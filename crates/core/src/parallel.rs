//! The parallel OctoCache pipeline (paper §4.4, Figures 13(b)/14),
//! generalised to N octree-update workers.
//!
//! Thread 1 (the caller's thread) runs ray tracing, cache insertion, queries
//! and cache eviction; each of the N workers dequeues evicted voxels from
//! its own SPSC buffer and applies them to its own octree shard. Evicted
//! batches are split by top-level octant ([`OctantRouter`], the same
//! routing as [`crate::sharded::ShardedOctoMap`]), so shards are disjoint
//! and each worker's octree needs no cross-worker synchronisation — one
//! mutex per shard serialises that shard's reads (cache-miss seeding,
//! queries) against its worker's batch updates. With `N = 1` this is
//! exactly the paper's two-thread layout.
//!
//! The paper dismisses naive octree sharding because a sensor's scan cone
//! is spatially local, so per-scan batches are skewed and most shards idle
//! (§4.4). Sharding the *eviction stream* evades that objection: the cache
//! accumulates updates across many scans before τ-eviction, and the evicted
//! batch covers everything the sensor swept since the last eviction — a far
//! wider, better-balanced footprint. Per-scan skew is still measurable here
//! (`shard_skew` in the trace records) so the claim can be checked.
//!
//! ## Phase ordering and consistency
//!
//! The paper's timeline runs, per batch: ray tracing → cache insertion →
//! *queries* → cache eviction → (workers: octree update, overlapping the
//! next batch's ray tracing). Queries therefore always execute when the
//! shared buffers are empty: everything evicted earlier has been applied to
//! the shards, and everything newer is in the cache. To expose the same
//! guarantee through a call-based API, [`ParallelOctoCache::insert_scan`]
//! **defers the eviction of the just-inserted batch to the start of the next
//! call**:
//!
//! 1. evict the previous batch, route it by octant, enqueue per worker,
//! 2. ray-trace the new scan — concurrently with the workers' updates,
//! 3. wait for every worker (the paper's thread-1 "gap", reported as
//!    [`PhaseTimes::wait`]),
//! 4. insert the new batch into the cache (octree reads are safe: all
//!    queues are empty and the shard mutexes are free).
//!
//! Between `insert_scan` calls the queues are thus always drained, so
//! queries are OctoMap-consistent at every point the caller can observe.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use octocache_geom::{GeomError, Point3, VoxelGrid, VoxelKey};
use octocache_octomap::stats::StatsSnapshot;
use octocache_octomap::{insert, rt, OccupancyOcTree, OccupancyParams};
use octocache_telemetry::{PhaseHistograms, PhaseTimes, Recorder, ScanRecord, Telemetry};
use parking_lot::{Mutex, MutexGuard};

use crate::cache::{CacheStats, EvictedCell, VoxelCache};
use crate::config::CacheConfig;
use crate::pipeline::{MappingSystem, RayTracer, ScanReport};
use crate::routing::{self, OctantRouter};
use crate::spsc::{self, Producer};

/// Items flowing through a worker's buffer.
///
/// Evicted voxels travel in chunks — the C++ `readerwriterqueue` the paper
/// uses is itself a block-based ring, so chunking preserves its behaviour
/// while keeping the producer/consumer cacheline traffic per *chunk* rather
/// than per voxel.
#[derive(Debug)]
enum Item {
    /// A run of evicted voxels with their accumulated log-odds.
    Chunk(Vec<EvictedCell>),
    /// Marks the end of a batch; the worker releases its shard mutex here.
    BatchEnd,
}

/// Evicted voxels per queue message.
const CHUNK_CELLS: usize = 1024;

/// Counters shared with one worker thread.
#[derive(Debug, Default)]
struct WorkerShared {
    batches_done: AtomicU64,
    dequeue_nanos: AtomicU64,
    octree_nanos: AtomicU64,
    /// Time spent waiting for the first item of a batch (no work queued).
    idle_nanos: AtomicU64,
    cells_applied: AtomicU64,
    /// Queue depth (in chunk messages, including the one just popped)
    /// observed by the worker at the start of the most recent batch drain.
    queue_depth_dequeue: AtomicU64,
    shutdown: AtomicBool,
}

/// Thread-1 state for one octree-update worker: its queue producer, its
/// octree shard, the shared counters, and the attribution bookmarks.
#[derive(Debug)]
struct Worker {
    producer: Producer<Item>,
    tree: Arc<Mutex<OccupancyOcTree>>,
    shared: Arc<WorkerShared>,
    handle: Option<JoinHandle<()>>,
    /// Worker nanos already attributed to recorded scans; the difference to
    /// the live atomics is the not-yet-attributed residual.
    dequeue_seen: u64,
    octree_seen: u64,
    idle_seen: u64,
}

/// Capacity of each worker's buffer in chunk messages (≥ a million voxels
/// in flight before the producer ever blocks — the paper reports enqueue
/// overhead as negligible, and a full queue would violate that).
const QUEUE_CAPACITY: usize = 1 << 12;

/// The parallel OctoCache mapping system: one mapping thread plus N
/// octree-update workers over octant shards.
///
/// See the [module docs](self) for the phase ordering; the public API is the
/// same [`MappingSystem`] as every other backend.
#[derive(Debug)]
pub struct ParallelOctoCache {
    cache: VoxelCache,
    workers: Vec<Worker>,
    router: OctantRouter,
    grid: VoxelGrid,
    params: OccupancyParams,
    ray_tracer: RayTracer,
    batch: insert::VoxelBatch,
    /// Reusable per-shard partition buffers for batch routing.
    route_bufs: Vec<Vec<EvictedCell>>,
    /// Batches sent to (every one of) the workers so far.
    batches_sent: u64,
    telemetry: Telemetry,
    /// Summed shard counters at the end of the previous scan, for per-scan
    /// deltas.
    last_tree_stats: StatsSnapshot,
}

/// What [`ParallelOctoCache::evict_and_enqueue`] produced.
///
/// Back-pressure — waiting for a worker to make room in a full queue — is
/// reported separately from the enqueue cost proper, matching the paper's
/// Table 3 where enqueue is the pure buffer-write overhead.
struct EnqueueOutcome {
    /// Evicted (and enqueued) voxels.
    count: usize,
    evict: Duration,
    enqueue: Duration,
    backpressure: Duration,
    /// Largest producer-side queue depth seen per worker while enqueueing,
    /// in chunk messages.
    queue_depths: Vec<u64>,
    /// Evicted cells routed to each worker's shard.
    shard_sizes: Vec<u64>,
}

/// A consistent read view over every octree shard, returned by
/// [`ParallelOctoCache::with_tree`]: all shard mutexes are held for the
/// view's lifetime, and point queries route through the same
/// [`OctantRouter`] the writers use.
pub struct ShardView<'a> {
    guards: Vec<MutexGuard<'a, OccupancyOcTree>>,
    router: OctantRouter,
    grid: VoxelGrid,
    params: OccupancyParams,
}

impl ShardView<'_> {
    /// Number of octree shards in the view.
    pub fn num_shards(&self) -> usize {
        self.guards.len()
    }

    /// Direct access to shard `i`'s octree.
    pub fn shard(&self, i: usize) -> &OccupancyOcTree {
        &self.guards[i]
    }

    /// Accumulated log-odds of a voxel, from the shard that owns it.
    pub fn search(&self, key: VoxelKey) -> Option<f32> {
        self.guards[self.router.shard_of(key)].search(key)
    }

    /// Occupancy decision for a voxel key.
    pub fn is_occupied(&self, key: VoxelKey) -> Option<bool> {
        self.search(key).map(|l| self.params.is_occupied(l))
    }

    /// Occupancy decision at a world point.
    ///
    /// # Errors
    ///
    /// Propagates [`GeomError`] when the point is outside the grid.
    pub fn is_occupied_at(&self, p: Point3) -> Result<Option<bool>, GeomError> {
        Ok(self.is_occupied(self.grid.key_of(p)?))
    }

    /// Total allocated nodes across all shards.
    pub fn num_nodes(&self) -> usize {
        self.guards.iter().map(|g| g.num_nodes()).sum()
    }
}

impl std::fmt::Debug for ShardView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardView")
            .field("num_shards", &self.guards.len())
            .finish_non_exhaustive()
    }
}

/// Pushes one item, spinning through back-pressure when the queue is full;
/// adds the stall to `backpressure` and returns the post-push queue depth.
fn push_with_backpressure(
    producer: &mut Producer<Item>,
    mut item: Item,
    backpressure: &mut Duration,
) -> u64 {
    use crate::spsc::Full;
    loop {
        match producer.push(item) {
            Ok(()) => break,
            Err(Full(v)) => {
                item = v;
                let tb = Instant::now();
                let mut spins = 0u32;
                while producer.len() >= producer.capacity() {
                    spins += 1;
                    if spins > 64 {
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                }
                *backpressure += tb.elapsed();
            }
        }
    }
    producer.len() as u64
}

impl ParallelOctoCache {
    /// Creates a parallel OctoCache with the standard ray tracer and one
    /// octree-update worker (the paper's two-thread layout).
    pub fn new(grid: VoxelGrid, params: OccupancyParams, config: CacheConfig) -> Self {
        Self::with_ray_tracer(grid, params, config, RayTracer::Standard)
    }

    /// Creates a parallel OctoCache with a chosen ray-tracing front-end
    /// (`RayTracer::Dedup` gives the paper's parallel OctoCache-RT) and one
    /// worker.
    pub fn with_ray_tracer(
        grid: VoxelGrid,
        params: OccupancyParams,
        config: CacheConfig,
        ray_tracer: RayTracer,
    ) -> Self {
        Self::with_workers(grid, params, config, ray_tracer, 1)
    }

    /// Creates a parallel OctoCache with `num_workers` ∈ {1, 2, 4, 8}
    /// octree-update workers, each owning one octant shard of the key
    /// space.
    ///
    /// # Panics
    ///
    /// Panics for worker counts other than 1, 2, 4 or 8 (the
    /// [`OctantRouter`] validity rule).
    pub fn with_workers(
        grid: VoxelGrid,
        params: OccupancyParams,
        config: CacheConfig,
        ray_tracer: RayTracer,
        num_workers: usize,
    ) -> Self {
        let router = OctantRouter::new(num_workers, &grid);
        let workers: Vec<Worker> = (0..num_workers)
            .map(|i| {
                let tree = Arc::new(Mutex::new(OccupancyOcTree::new(grid, params)));
                let shared = Arc::new(WorkerShared::default());
                let (producer, consumer) = spsc::channel::<Item>(QUEUE_CAPACITY);
                let handle = {
                    let tree = Arc::clone(&tree);
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("octocache-octree-{i}"))
                        .spawn(move || worker_loop(consumer, tree, shared))
                        .expect("failed to spawn octree worker thread")
                };
                Worker {
                    producer,
                    tree,
                    shared,
                    handle: Some(handle),
                    dequeue_seen: 0,
                    octree_seen: 0,
                    idle_seen: 0,
                }
            })
            .collect();
        let backend = Self::backend_name(ray_tracer, num_workers);
        ParallelOctoCache {
            cache: VoxelCache::new(config, params),
            workers,
            router,
            grid,
            params,
            ray_tracer,
            batch: insert::VoxelBatch::new(),
            route_bufs: vec![Vec::new(); num_workers],
            batches_sent: 0,
            telemetry: Telemetry::new(backend),
            last_tree_stats: StatsSnapshot::default(),
        }
    }

    /// The backend display name: `octocache-parallel[-rt][xN]` (the `xN`
    /// suffix only for N > 1, so the single-worker layout keeps its
    /// historical name).
    fn backend_name(ray_tracer: RayTracer, num_workers: usize) -> String {
        let mut name = format!("octocache-parallel{}", ray_tracer.suffix());
        if num_workers > 1 {
            name.push_str(&format!("x{num_workers}"));
        }
        name
    }

    /// The cache layer.
    pub fn cache(&self) -> &VoxelCache {
        &self.cache
    }

    /// Cache behaviour counters.
    pub fn cache_stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// Number of octree-update workers (= octree shards).
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Runs `f` with shared access to the backing octree shards (every
    /// shard mutex is held for the duration). Pending cache contents are
    /// not included; call [`MappingSystem::finish`] first for a complete
    /// tree.
    pub fn with_tree<R>(&self, f: impl FnOnce(&ShardView<'_>) -> R) -> R {
        let view = ShardView {
            guards: self.workers.iter().map(|w| w.tree.lock()).collect(),
            router: self.router,
            grid: self.grid,
            params: self.params,
        };
        f(&view)
    }

    /// Shuts the workers down and returns the merged octree (flushing the
    /// cache first, so the tree is complete). Shards populate disjoint
    /// top-level octant groups, so the merge is structural.
    pub fn into_tree(mut self) -> OccupancyOcTree {
        self.finish();
        self.shutdown_workers();
        let grid = self.grid;
        let params = self.params;
        let workers = std::mem::take(&mut self.workers);
        drop(self); // drops producers & our Arc clones
        let mut trees = workers.into_iter().map(|w| match Arc::try_unwrap(w.tree) {
            Ok(mutex) => mutex.into_inner(),
            Err(_) => unreachable!("worker joined; no other Arc holders remain"),
        });
        let first = trees
            .next()
            .unwrap_or_else(|| OccupancyOcTree::new(grid, params));
        trees.fold(first, |mut merged, tree| {
            merged
                .merge_disjoint_top_level(&tree)
                .expect("workers partition key space disjointly");
            merged
        })
    }

    /// Spin-waits until every worker has applied every enqueued batch — the
    /// thread-1 "gap" of the paper's Figure 13(b), extended to the worker
    /// set.
    fn wait_for_workers(&self) {
        for w in &self.workers {
            let mut spins = 0u32;
            while w.shared.batches_done.load(Ordering::Acquire) < self.batches_sent {
                spins += 1;
                if spins > 64 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// Routes `cells` by octant and enqueues each shard's share to its
    /// worker, closing the batch with a `BatchEnd` on **every** queue (even
    /// empty shares) so `batches_done` stays aligned across the worker set.
    fn send_batch(&mut self, cells: &[EvictedCell]) -> EnqueueOutcome {
        let t1 = Instant::now();
        let n = self.workers.len();
        let mut backpressure = Duration::ZERO;
        let mut queue_depths = vec![0u64; n];
        let mut shard_sizes = vec![0u64; n];

        if n == 1 {
            // Single worker: no routing needed, chunk straight off the
            // eviction buffer.
            shard_sizes[0] = cells.len() as u64;
            let w = &mut self.workers[0];
            for chunk in cells.chunks(CHUNK_CELLS) {
                let depth = push_with_backpressure(
                    &mut w.producer,
                    Item::Chunk(chunk.to_vec()),
                    &mut backpressure,
                );
                queue_depths[0] = queue_depths[0].max(depth);
            }
        } else {
            let mut bufs = std::mem::take(&mut self.route_bufs);
            for buf in &mut bufs {
                buf.clear();
            }
            for cell in cells {
                bufs[self.router.shard_of(cell.key)].push(*cell);
            }
            for (i, buf) in bufs.iter().enumerate() {
                shard_sizes[i] = buf.len() as u64;
                let w = &mut self.workers[i];
                for chunk in buf.chunks(CHUNK_CELLS) {
                    let depth = push_with_backpressure(
                        &mut w.producer,
                        Item::Chunk(chunk.to_vec()),
                        &mut backpressure,
                    );
                    queue_depths[i] = queue_depths[i].max(depth);
                }
            }
            self.route_bufs = bufs;
        }
        for (i, w) in self.workers.iter_mut().enumerate() {
            let depth = push_with_backpressure(&mut w.producer, Item::BatchEnd, &mut backpressure);
            queue_depths[i] = queue_depths[i].max(depth);
        }
        self.batches_sent += 1;
        let enqueue = t1.elapsed().saturating_sub(backpressure);
        EnqueueOutcome {
            count: cells.len(),
            evict: Duration::ZERO,
            enqueue,
            backpressure,
            queue_depths,
            shard_sizes,
        }
    }

    /// Evicts the pending batch and enqueues it for the workers, sampling
    /// the producer-side queue depths along the way.
    fn evict_and_enqueue(&mut self) -> EnqueueOutcome {
        let t0 = Instant::now();
        let mut evicted: Vec<EvictedCell> = Vec::new();
        self.cache.evict_into(&mut evicted);
        let evict = t0.elapsed();
        let mut out = self.send_batch(&evicted);
        out.evict = evict;
        out
    }

    fn shutdown_workers(&mut self) {
        for w in &self.workers {
            if w.handle.is_some() {
                w.shared.shutdown.store(true, Ordering::Release);
            }
        }
        for w in &mut self.workers {
            if let Some(handle) = w.handle.take() {
                let _ = handle.join();
            }
        }
    }

    /// Worker time accumulated since the last attribution, folded into a
    /// [`PhaseTimes`] plus per-worker busy/idle nanos, and marked as
    /// attributed. Called once per scan, so each scan's record carries the
    /// worker time of the batch it waited on (the batch evicted one scan
    /// earlier — the pipeline offset of the paper's Figure 13(b)).
    fn take_worker_delta(&mut self) -> (PhaseTimes, Vec<u64>, Vec<u64>) {
        let mut times = PhaseTimes::default();
        let mut busy = Vec::with_capacity(self.workers.len());
        let mut idle = Vec::with_capacity(self.workers.len());
        for w in &mut self.workers {
            let dq = w.shared.dequeue_nanos.load(Ordering::Relaxed);
            let oc = w.shared.octree_nanos.load(Ordering::Relaxed);
            let id = w.shared.idle_nanos.load(Ordering::Relaxed);
            let d_dq = dq.saturating_sub(w.dequeue_seen);
            let d_oc = oc.saturating_sub(w.octree_seen);
            let d_id = id.saturating_sub(w.idle_seen);
            w.dequeue_seen = dq;
            w.octree_seen = oc;
            w.idle_seen = id;
            times.dequeue += Duration::from_nanos(d_dq);
            times.octree_update += Duration::from_nanos(d_oc);
            busy.push(d_dq + d_oc);
            idle.push(d_id);
        }
        (times, busy, idle)
    }

    /// Worker time not yet attributed to any scan.
    fn worker_residual(&self) -> PhaseTimes {
        let mut times = PhaseTimes::default();
        for w in &self.workers {
            let dq = w.shared.dequeue_nanos.load(Ordering::Relaxed);
            let oc = w.shared.octree_nanos.load(Ordering::Relaxed);
            times.dequeue += Duration::from_nanos(dq.saturating_sub(w.dequeue_seen));
            times.octree_update += Duration::from_nanos(oc.saturating_sub(w.octree_seen));
        }
        times
    }

    /// Sums the instrumentation counters of every shard (locking each).
    fn summed_tree_stats(&self) -> StatsSnapshot {
        let mut total = StatsSnapshot::default();
        for w in &self.workers {
            total.merge(&w.tree.lock().stats().snapshot());
        }
        total
    }
}

impl MappingSystem for ParallelOctoCache {
    fn name(&self) -> String {
        Self::backend_name(self.ray_tracer, self.workers.len())
    }

    fn grid(&self) -> &VoxelGrid {
        &self.grid
    }

    fn insert_scan(
        &mut self,
        origin: Point3,
        cloud: &[Point3],
        max_range: f64,
    ) -> Result<ScanReport, GeomError> {
        let cache_before = *self.cache.stats();

        // Phase 1: evict the previous batch and hand it to the workers.
        let enq = self.evict_and_enqueue();

        // Phase 2: ray-trace the new scan, overlapping the workers' update.
        let grid = self.grid;
        let t0 = Instant::now();
        insert::compute_update(&grid, origin, cloud, max_range, &mut self.batch)?;
        let deduped;
        let batch: &insert::VoxelBatch = match self.ray_tracer {
            RayTracer::Standard => &self.batch,
            RayTracer::Dedup => {
                deduped = rt::dedup_batch(&self.batch);
                &deduped
            }
        };
        let ray_tracing = t0.elapsed();

        // Phase 3: wait for every worker — the paper's thread-1 gap
        // (including any back-pressure absorbed during enqueue).
        let t1 = Instant::now();
        self.wait_for_workers();
        let wait = t1.elapsed() + enq.backpressure;

        // Phase 4: cache insertion under the shard mutexes (seeding misses
        // from the owning shard). All queues are drained, so the locks are
        // uncontended.
        let t2 = Instant::now();
        let (mutex_wait, tree_after) = {
            let guards: Vec<MutexGuard<'_, OccupancyOcTree>> =
                self.workers.iter().map(|w| w.tree.lock()).collect();
            let mutex_wait = t2.elapsed();
            let router = self.router;
            let cache = &mut self.cache;
            for u in batch.iter() {
                cache.insert(u.key, u.occupied, |k| guards[router.shard_of(k)].search(k));
            }
            let mut tree_after = StatsSnapshot::default();
            for g in &guards {
                tree_after.merge(&g.stats().snapshot());
            }
            (mutex_wait, tree_after)
        };
        let cache_insert = t2.elapsed();
        let observations = batch.len();

        // This scan's times carry the worker-side cost of the batch it
        // waited on, so cross-scan totals cover both sides of the pipeline.
        let (worker_times, worker_busy_ns, worker_idle_ns) = self.take_worker_delta();
        let times = PhaseTimes {
            ray_tracing,
            cache_insert,
            cache_evict: enq.evict,
            enqueue: enq.enqueue,
            wait,
            ..Default::default()
        } + worker_times;

        let tree_delta = tree_after.since(&self.last_tree_stats);
        self.last_tree_stats = tree_after;
        let cache_delta = self.cache.stats().since(&cache_before);
        self.telemetry.record(ScanRecord {
            times,
            observations: observations as u64,
            cache_hits: cache_delta.hits,
            cache_misses: cache_delta.misses,
            cache_insertions: cache_delta.insertions,
            cache_evictions: cache_delta.evictions,
            octree_node_visits: tree_delta.node_visits,
            octree_leaf_updates: tree_delta.leaf_updates,
            octree_nodes_created: tree_delta.nodes_created,
            queue_depth_enqueue: enq.queue_depths.iter().copied().max().unwrap_or(0),
            queue_depth_dequeue: self
                .workers
                .iter()
                .map(|w| w.shared.queue_depth_dequeue.load(Ordering::Relaxed))
                .max()
                .unwrap_or(0),
            mutex_wait,
            shard_skew: routing::skew(&enq.shard_sizes),
            worker_queue_depths: enq.queue_depths,
            shard_batch_sizes: enq.shard_sizes,
            worker_busy_ns,
            worker_idle_ns,
            ..Default::default()
        });

        Ok(ScanReport {
            times,
            observations,
            cache_hits: cache_delta.hits,
            octree_updates: enq.count,
        })
    }

    fn occupancy(&mut self, key: VoxelKey) -> Option<f32> {
        match self.cache.get(key) {
            Some(v) => Some(v),
            None => self.workers[self.router.shard_of(key)]
                .tree
                .lock()
                .search(key),
        }
    }

    fn is_occupied(&mut self, key: VoxelKey) -> Option<bool> {
        let params = self.params;
        self.occupancy(key).map(|l| params.is_occupied(l))
    }

    fn finish(&mut self) -> PhaseTimes {
        // Flush the pending eviction batch…
        let enq1 = self.evict_and_enqueue();
        // …then drain everything left in the cache as a final batch.
        let t0 = Instant::now();
        let drained = self.cache.drain_all();
        let evict2 = t0.elapsed();
        let enq2 = self.send_batch(&drained);

        let t1 = Instant::now();
        self.wait_for_workers();
        let wait = t1.elapsed() + enq1.backpressure + enq2.backpressure;

        let times = PhaseTimes {
            cache_evict: enq1.evict + evict2,
            enqueue: enq1.enqueue + enq2.enqueue,
            wait,
            ..Default::default()
        };
        // The final flush belongs to no scan: fold its thread-1 times and
        // the worker time it triggered into the totals only.
        let with_worker = times + self.take_worker_delta().0;
        self.telemetry.add_times(with_worker);
        self.telemetry.flush();
        times
    }

    fn phase_times(&self) -> PhaseTimes {
        self.telemetry.totals() + self.worker_residual()
    }

    fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.telemetry.set_recorder(recorder);
    }

    fn phase_histograms(&self) -> Option<&PhaseHistograms> {
        Some(self.telemetry.histograms())
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        Some(*self.cache.stats())
    }

    fn tree_stats(&self) -> Option<StatsSnapshot> {
        Some(self.summed_tree_stats())
    }

    fn take_tree(self: Box<Self>) -> OccupancyOcTree {
        (*self).into_tree()
    }
}

impl Drop for ParallelOctoCache {
    fn drop(&mut self) {
        self.shutdown_workers();
    }
}

/// An octree-update worker: dequeue evicted voxels and apply them to this
/// worker's octree shard, holding the shard mutex per batch.
fn worker_loop(
    mut consumer: spsc::Consumer<Item>,
    tree: Arc<Mutex<OccupancyOcTree>>,
    shared: Arc<WorkerShared>,
) {
    'outer: loop {
        // Wait for work; this is idle time, not dequeue cost, and is
        // reported separately so per-worker utilization is measurable.
        let idle_start = Instant::now();
        let first = loop {
            if let Some(item) = consumer.try_pop() {
                break Some(item);
            }
            if shared.shutdown.load(Ordering::Acquire) {
                // Final double-check to avoid losing a racing push.
                break consumer.try_pop();
            }
            std::thread::yield_now();
        };
        shared
            .idle_nanos
            .fetch_add(idle_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let first = match first {
            Some(item) => item,
            None => break 'outer,
        };

        match first {
            Item::BatchEnd => {
                shared.batches_done.fetch_add(1, Ordering::Release);
            }
            Item::Chunk(chunk) => {
                // Depth at the start of the drain, counting the popped chunk.
                shared
                    .queue_depth_dequeue
                    .store(consumer.len() as u64 + 1, Ordering::Relaxed);
                // Per-cell `Instant` calls would dominate the work at these
                // batch sizes, so timing is per segment: total drain time,
                // minus measured producer-stall spins, split into octree
                // and dequeue components via a calibrated per-pop cost.
                let mut cells = chunk.len() as u64;
                let mut pops = 1u64;
                let mut stall = std::time::Duration::ZERO;
                let guard_start = Instant::now();
                let mut guard = tree.lock();
                for cell in &chunk {
                    guard.set_node_log_odds(cell.key, cell.log_odds);
                }
                loop {
                    match consumer.try_pop() {
                        Some(Item::Chunk(chunk)) => {
                            for cell in &chunk {
                                guard.set_node_log_odds(cell.key, cell.log_odds);
                            }
                            cells += chunk.len() as u64;
                            pops += 1;
                        }
                        Some(Item::BatchEnd) => {
                            pops += 1;
                            break;
                        }
                        None => {
                            // Producer is still enqueueing this batch; wait
                            // (measured, attributed to neither component).
                            let t = Instant::now();
                            let mut abandoned = false;
                            while consumer.is_empty() {
                                if shared.shutdown.load(Ordering::Acquire) {
                                    // Producer died mid-batch (panic on
                                    // thread 1); abandon the remainder.
                                    abandoned = true;
                                    break;
                                }
                                std::hint::spin_loop();
                            }
                            stall += t.elapsed();
                            if abandoned && consumer.is_empty() {
                                break;
                            }
                        }
                    }
                }
                let busy_ns = guard_start.elapsed().saturating_sub(stall).as_nanos() as u64;
                drop(guard);
                let dequeue_ns = pops * pop_cost_ns();
                shared
                    .octree_nanos
                    .fetch_add(busy_ns.saturating_sub(dequeue_ns), Ordering::Relaxed);
                shared
                    .dequeue_nanos
                    .fetch_add(dequeue_ns.min(busy_ns), Ordering::Relaxed);
                shared.cells_applied.fetch_add(cells, Ordering::Relaxed);
                shared.batches_done.fetch_add(1, Ordering::Release);
            }
        }
    }
}

/// One-time calibration of the SPSC pop cost, used to attribute worker time
/// between "dequeue" and "octree update" without per-cell timestamps
/// (Table 3 of the paper reports these as separate, both tiny).
fn pop_cost_ns() -> u64 {
    use std::sync::OnceLock;
    static POP_NS: OnceLock<u64> = OnceLock::new();
    *POP_NS.get_or_init(|| {
        const N: usize = 64 * 1024;
        let (mut tx, mut rx) = spsc::channel::<Item>(N);
        for _ in 0..N - 1 {
            tx.push(Item::BatchEnd).expect("capacity reserved");
        }
        let t = Instant::now();
        let mut popped = 0u64;
        while rx.try_pop().is_some() {
            popped += 1;
        }
        (t.elapsed().as_nanos() as u64 / popped.max(1)).max(1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system(w: usize, tau: usize) -> ParallelOctoCache {
        let grid = VoxelGrid::new(0.5, 8).unwrap();
        let config = CacheConfig::builder()
            .num_buckets(w)
            .tau(tau)
            .build()
            .unwrap();
        ParallelOctoCache::new(grid, OccupancyParams::default(), config)
    }

    fn system_n(workers: usize, w: usize, tau: usize) -> ParallelOctoCache {
        let grid = VoxelGrid::new(0.5, 8).unwrap();
        let config = CacheConfig::builder()
            .num_buckets(w)
            .tau(tau)
            .build()
            .unwrap();
        ParallelOctoCache::with_workers(
            grid,
            OccupancyParams::default(),
            config,
            RayTracer::Standard,
            workers,
        )
    }

    fn wall_cloud(offset: f64) -> Vec<Point3> {
        (0..50)
            .map(|i| Point3::new(6.0, -1.5 + offset + i as f64 * 0.05, 0.25))
            .collect()
    }

    /// A cloud spanning several octants (both sides of the grid centre on
    /// every axis), so multi-worker runs exercise more than one shard.
    fn spread_cloud(offset: f64) -> Vec<Point3> {
        (0..60)
            .map(|i| {
                let a = i as f64 * 0.41 + offset;
                Point3::new(
                    12.0 * a.sin(),
                    12.0 * a.cos(),
                    if i % 2 == 0 { 4.0 } else { -4.0 },
                )
            })
            .collect()
    }

    #[test]
    fn name() {
        let mut s = system(64, 4);
        assert_eq!(s.name(), "octocache-parallel");
        s.finish();
        let mut s4 = system_n(4, 64, 4);
        assert_eq!(s4.name(), "octocache-parallelx4");
        s4.finish();
    }

    #[test]
    fn insert_and_query() {
        let mut s = system(1 << 10, 4);
        for i in 0..5 {
            s.insert_scan(Point3::ZERO, &wall_cloud(i as f64 * 0.1), 20.0)
                .unwrap();
            // Queries between scans must already see the latest scan.
            assert_eq!(
                s.is_occupied_at(Point3::new(6.0, 0.0, 0.25)).unwrap(),
                Some(true)
            );
            assert_eq!(
                s.is_occupied_at(Point3::new(3.0, 0.0, 0.25)).unwrap(),
                Some(false)
            );
        }
    }

    #[test]
    fn insert_and_query_with_four_workers() {
        let mut s = system_n(4, 1 << 6, 1); // tiny cache: constant eviction
        let mut last = Vec::new();
        for i in 0..6 {
            let origin = Point3::new(0.0, 0.0, if i % 2 == 0 { 1.0 } else { -1.0 });
            last = spread_cloud(i as f64 * 0.13);
            s.insert_scan(origin, &last, 40.0).unwrap();
        }
        // The latest scan's endpoints span several octants, so these
        // queries exercise every shard's cache-miss fall-through. All of
        // them are known to the map, and most were just hit.
        let mut occupied = 0;
        for p in &last {
            match s.is_occupied_at(*p).unwrap() {
                Some(true) => occupied += 1,
                Some(false) => {}
                None => panic!("endpoint {p:?} unknown to the map"),
            }
        }
        assert!(occupied > last.len() / 2, "{occupied}/{}", last.len());
    }

    #[test]
    fn finish_completes_tree() {
        let mut s = system(1 << 8, 2);
        for i in 0..4 {
            s.insert_scan(Point3::ZERO, &wall_cloud(i as f64 * 0.05), 20.0)
                .unwrap();
        }
        s.finish();
        // The tree alone now answers (no cache consultation).
        s.with_tree(|t| {
            assert_eq!(
                t.is_occupied_at(Point3::new(6.0, 0.0, 0.25)).unwrap(),
                Some(true)
            );
        });
    }

    #[test]
    fn into_tree_matches_serial_and_octomap() {
        let grid = VoxelGrid::new(0.5, 8).unwrap();
        let params = OccupancyParams::default();
        let cfg = CacheConfig::builder()
            .num_buckets(1 << 8)
            .tau(2)
            .build()
            .unwrap();
        let mut par = ParallelOctoCache::new(grid, params, cfg);
        let mut ser = crate::serial::SerialOctoCache::new(grid, params, cfg);
        let mut plain = OccupancyOcTree::new(grid, params);

        for i in 0..6 {
            let origin = Point3::new(0.0, i as f64 * 0.2, 0.0);
            let cloud = wall_cloud(i as f64 * 0.03);
            par.insert_scan(origin, &cloud, 30.0).unwrap();
            ser.insert_scan(origin, &cloud, 30.0).unwrap();
            insert::insert_point_cloud(&mut plain, origin, &cloud, 30.0).unwrap();
        }
        let t_par = par.into_tree();
        let t_ser = ser.into_tree();
        for x in 100..160u16 {
            for y in 110..140u16 {
                let key = VoxelKey::new(x, y, 128);
                let a = t_par.search(key);
                let b = t_ser.search(key);
                let c = plain.search(key);
                match (a, b, c) {
                    (None, None, None) => {}
                    (Some(a), Some(b), Some(c)) => {
                        assert!((a - b).abs() < 1e-5, "{key}: par {a} vs ser {b}");
                        assert!((a - c).abs() < 1e-5, "{key}: par {a} vs plain {c}");
                    }
                    other => panic!("{key}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn multi_worker_into_tree_matches_single_worker() {
        let grid = VoxelGrid::new(0.5, 8).unwrap();
        let params = OccupancyParams::default();
        let cfg = CacheConfig::builder()
            .num_buckets(1 << 6)
            .tau(1)
            .build()
            .unwrap();
        let build = |n: usize| {
            let mut s = ParallelOctoCache::with_workers(grid, params, cfg, RayTracer::Standard, n);
            for i in 0..5 {
                s.insert_scan(Point3::ZERO, &spread_cloud(i as f64 * 0.29), 40.0)
                    .unwrap();
            }
            s.into_tree()
        };
        let t1 = build(1);
        for n in [2, 4, 8] {
            let tn = build(n);
            assert_eq!(tn.num_nodes(), t1.num_nodes(), "{n} workers");
            for x in (0..256u16).step_by(7) {
                for y in (0..256u16).step_by(11) {
                    let key = VoxelKey::new(x, y, 136);
                    match (t1.search(key), tn.search(key)) {
                        (None, None) => {}
                        (Some(a), Some(b)) => {
                            assert!((a - b).abs() < 1e-6, "{key} ({n} workers)")
                        }
                        other => panic!("{key} ({n} workers): {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn worker_times_are_recorded() {
        let mut s = system(1 << 6, 1); // tiny cache: lots of evictions
        for i in 0..8 {
            s.insert_scan(Point3::ZERO, &wall_cloud(i as f64 * 0.07), 20.0)
                .unwrap();
        }
        s.finish();
        let t = s.phase_times();
        assert!(t.octree_update > std::time::Duration::ZERO);
        assert!(s.workers[0].shared.cells_applied.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn per_worker_telemetry_is_recorded() {
        use octocache_telemetry::SharedRecorder;
        let recorder = SharedRecorder::new();
        let mut s = system_n(4, 1 << 6, 1);
        s.set_recorder(Box::new(recorder.clone()));
        for i in 0..6 {
            s.insert_scan(Point3::ZERO, &spread_cloud(i as f64 * 0.17), 40.0)
                .unwrap();
        }
        s.finish();
        let records = recorder.records();
        assert!(!records.is_empty());
        for r in &records {
            assert_eq!(r.worker_queue_depths.len(), 4);
            assert_eq!(r.shard_batch_sizes.len(), 4);
            assert_eq!(r.worker_busy_ns.len(), 4);
            assert_eq!(r.worker_idle_ns.len(), 4);
            assert!(r.shard_skew >= 1.0, "skew {}", r.shard_skew);
        }
        // The spread cloud reaches several octants, so after the first
        // couple of evictions more than one shard must have received cells.
        let active: usize = (0..4)
            .filter(|&i| records.iter().any(|r| r.shard_batch_sizes[i] > 0))
            .count();
        assert!(active > 1, "expected >1 active shard, got {active}");
        // Busy time must have accrued on every active shard's worker.
        assert!(records
            .iter()
            .any(|r| r.worker_busy_ns.iter().any(|&b| b > 0)));
    }

    #[test]
    fn drop_without_finish_is_clean() {
        let mut s = system_n(4, 1 << 6, 2);
        s.insert_scan(Point3::ZERO, &spread_cloud(0.0), 40.0)
            .unwrap();
        drop(s); // must join every worker without hanging or panicking
    }

    #[test]
    fn rt_variant_name_and_behaviour() {
        let grid = VoxelGrid::new(0.5, 8).unwrap();
        let cfg = CacheConfig::builder()
            .num_buckets(1 << 8)
            .tau(4)
            .build()
            .unwrap();
        let mut s = ParallelOctoCache::with_ray_tracer(
            grid,
            OccupancyParams::default(),
            cfg,
            RayTracer::Dedup,
        );
        assert_eq!(s.name(), "octocache-parallel-rt");
        let report = s.insert_scan(Point3::ZERO, &wall_cloud(0.0), 20.0).unwrap();
        // Dedup front-end: observations are distinct.
        assert!(report.observations > 0);
        s.finish();

        let mut s2 = ParallelOctoCache::with_workers(
            grid,
            OccupancyParams::default(),
            cfg,
            RayTracer::Dedup,
            2,
        );
        assert_eq!(s2.name(), "octocache-parallel-rtx2");
        s2.finish();
    }

    #[test]
    #[should_panic(expected = "must be 1, 2, 4 or 8")]
    fn rejects_invalid_worker_counts() {
        system_n(3, 64, 4);
    }
}
