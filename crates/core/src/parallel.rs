//! The parallel OctoCache pipeline (paper §4.4, Figures 13(b)/14).
//!
//! Thread 1 (the caller's thread) runs ray tracing, cache insertion, queries
//! and cache eviction; thread 2 dequeues evicted voxels from a shared SPSC
//! buffer and applies them to the octree. One mutex serialises octree reads
//! (cache-miss seeding, queries) against octree writes (thread 2's batch
//! updates), eliminating data races exactly as the paper prescribes.
//!
//! ## Phase ordering and consistency
//!
//! The paper's timeline runs, per batch: ray tracing → cache insertion →
//! *queries* → cache eviction → (thread 2: octree update, overlapping the
//! next batch's ray tracing). Queries therefore always execute when the
//! shared buffer is empty: everything evicted earlier has been applied to
//! the tree, and everything newer is in the cache. To expose the same
//! guarantee through a call-based API, [`ParallelOctoCache::insert_scan`]
//! **defers the eviction of the just-inserted batch to the start of the next
//! call**:
//!
//! 1. evict the previous batch, enqueue it (thread 2 starts updating),
//! 2. ray-trace the new scan — concurrently with thread 2's update,
//! 3. wait for thread 2 to finish (the paper's thread-1 "gap", reported as
//!    [`PhaseTimes::wait`]),
//! 4. insert the new batch into the cache (octree reads are safe: the queue
//!    is empty and the mutex is free).
//!
//! Between `insert_scan` calls the queue is thus always drained, so queries
//! are OctoMap-consistent at every point the caller can observe.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use octocache_geom::{GeomError, Point3, VoxelGrid, VoxelKey};
use octocache_octomap::stats::StatsSnapshot;
use octocache_octomap::{insert, rt, OccupancyOcTree, OccupancyParams};
use octocache_telemetry::{PhaseHistograms, PhaseTimes, Recorder, ScanRecord, Telemetry};
use parking_lot::Mutex;

use crate::cache::{CacheStats, EvictedCell, VoxelCache};
use crate::config::CacheConfig;
use crate::pipeline::{MappingSystem, RayTracer, ScanReport};
use crate::spsc::{self, Producer};

/// Items flowing through the shared buffer.
///
/// Evicted voxels travel in chunks — the C++ `readerwriterqueue` the paper
/// uses is itself a block-based ring, so chunking preserves its behaviour
/// while keeping the producer/consumer cacheline traffic per *chunk* rather
/// than per voxel.
#[derive(Debug)]
enum Item {
    /// A run of evicted voxels with their accumulated log-odds.
    Chunk(Vec<EvictedCell>),
    /// Marks the end of a batch; thread 2 releases the octree mutex here.
    BatchEnd,
}

/// Evicted voxels per queue message.
const CHUNK_CELLS: usize = 1024;

/// Counters shared with the worker thread.
#[derive(Debug, Default)]
struct WorkerShared {
    batches_done: AtomicU64,
    dequeue_nanos: AtomicU64,
    octree_nanos: AtomicU64,
    cells_applied: AtomicU64,
    /// Queue depth (in chunk messages, including the one just popped)
    /// observed by the worker at the start of the most recent batch drain.
    queue_depth_dequeue: AtomicU64,
    shutdown: AtomicBool,
}

/// Capacity of the shared buffer in chunk messages (≥ a million voxels in
/// flight before the producer ever blocks — the paper reports enqueue
/// overhead as negligible, and a full queue would violate that).
const QUEUE_CAPACITY: usize = 1 << 12;

/// The parallel (two-thread) OctoCache mapping system.
///
/// See the [module docs](self) for the phase ordering; the public API is the
/// same [`MappingSystem`] as every other backend.
#[derive(Debug)]
pub struct ParallelOctoCache {
    cache: VoxelCache,
    tree: Arc<Mutex<OccupancyOcTree>>,
    grid: VoxelGrid,
    params: OccupancyParams,
    ray_tracer: RayTracer,
    batch: insert::VoxelBatch,
    producer: Producer<Item>,
    shared: Arc<WorkerShared>,
    worker: Option<JoinHandle<()>>,
    batches_sent: u64,
    telemetry: Telemetry,
    /// Tree counters at the end of the previous scan, for per-scan deltas.
    last_tree_stats: StatsSnapshot,
    /// Worker nanos already attributed to recorded scans; the difference to
    /// the live atomics is the not-yet-attributed residual.
    worker_dequeue_seen: u64,
    worker_octree_seen: u64,
}

/// What [`ParallelOctoCache::evict_and_enqueue`] produced.
///
/// Back-pressure — waiting for thread 2 to make room in a full queue — is
/// reported separately from the enqueue cost proper, matching the paper's
/// Table 3 where enqueue is the pure buffer-write overhead.
struct EnqueueOutcome {
    /// Evicted (and enqueued) voxels.
    count: usize,
    evict: Duration,
    enqueue: Duration,
    backpressure: Duration,
    /// Largest producer-side queue depth seen while enqueueing, in chunk
    /// messages.
    queue_depth: u64,
}

impl ParallelOctoCache {
    /// Creates a parallel OctoCache with the standard ray tracer, spawning
    /// the octree-update worker thread.
    pub fn new(grid: VoxelGrid, params: OccupancyParams, config: CacheConfig) -> Self {
        Self::with_ray_tracer(grid, params, config, RayTracer::Standard)
    }

    /// Creates a parallel OctoCache with a chosen ray-tracing front-end
    /// (`RayTracer::Dedup` gives the paper's parallel OctoCache-RT).
    pub fn with_ray_tracer(
        grid: VoxelGrid,
        params: OccupancyParams,
        config: CacheConfig,
        ray_tracer: RayTracer,
    ) -> Self {
        let tree = Arc::new(Mutex::new(OccupancyOcTree::new(grid, params)));
        let shared = Arc::new(WorkerShared::default());
        let (producer, consumer) = spsc::channel::<Item>(QUEUE_CAPACITY);
        let worker = {
            let tree = Arc::clone(&tree);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("octocache-octree".into())
                .spawn(move || worker_loop(consumer, tree, shared))
                .expect("failed to spawn octree worker thread")
        };
        ParallelOctoCache {
            cache: VoxelCache::new(config, params),
            tree,
            grid,
            params,
            ray_tracer,
            batch: insert::VoxelBatch::new(),
            producer,
            shared,
            worker: Some(worker),
            batches_sent: 0,
            telemetry: Telemetry::new(format!("octocache-parallel{}", ray_tracer.suffix())),
            last_tree_stats: StatsSnapshot::default(),
            worker_dequeue_seen: 0,
            worker_octree_seen: 0,
        }
    }

    /// The cache layer.
    pub fn cache(&self) -> &VoxelCache {
        &self.cache
    }

    /// Cache behaviour counters.
    pub fn cache_stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// Runs `f` with shared access to the backing octree (the octree mutex
    /// is held for the duration). Pending cache contents are not included;
    /// call [`MappingSystem::finish`] first for a complete tree.
    pub fn with_tree<R>(&self, f: impl FnOnce(&OccupancyOcTree) -> R) -> R {
        f(&self.tree.lock())
    }

    /// Shuts the worker down and returns the octree (flushing the cache
    /// first, so the tree is complete).
    pub fn into_tree(mut self) -> OccupancyOcTree {
        self.finish();
        self.shutdown_worker();
        let tree = Arc::clone(&self.tree);
        drop(self); // drops producer & our Arc clones
        match Arc::try_unwrap(tree) {
            Ok(mutex) => mutex.into_inner(),
            Err(_) => unreachable!("worker joined; no other Arc holders remain"),
        }
    }

    /// Spin-waits until thread 2 has applied every enqueued batch — the
    /// thread-1 "gap" of the paper's Figure 13(b).
    fn wait_for_worker(&self) {
        let mut spins = 0u32;
        while self.shared.batches_done.load(Ordering::Acquire) < self.batches_sent {
            spins += 1;
            if spins > 64 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Evicts the pending batch and enqueues it for thread 2, sampling the
    /// producer-side queue depth along the way.
    fn evict_and_enqueue(&mut self) -> EnqueueOutcome {
        use crate::spsc::Full;

        let t0 = Instant::now();
        let mut evicted: Vec<EvictedCell> = Vec::new();
        self.cache.evict_into(&mut evicted);
        let evict = t0.elapsed();

        let t1 = Instant::now();
        let mut backpressure = Duration::ZERO;
        let mut queue_depth = 0u64;
        let mut send = |producer: &mut Producer<Item>, mut item: Item| {
            loop {
                match producer.push(item) {
                    Ok(()) => break,
                    Err(Full(v)) => {
                        item = v;
                        let tb = Instant::now();
                        let mut spins = 0u32;
                        while producer.len() >= producer.capacity() {
                            spins += 1;
                            if spins > 64 {
                                std::thread::yield_now();
                            } else {
                                std::hint::spin_loop();
                            }
                        }
                        backpressure += tb.elapsed();
                    }
                }
            }
            queue_depth = queue_depth.max(producer.len() as u64);
        };
        let count = evicted.len();
        for chunk in evicted.chunks(CHUNK_CELLS) {
            send(&mut self.producer, Item::Chunk(chunk.to_vec()));
        }
        send(&mut self.producer, Item::BatchEnd);
        self.batches_sent += 1;
        let enqueue = t1.elapsed().saturating_sub(backpressure);
        EnqueueOutcome {
            count,
            evict,
            enqueue,
            backpressure,
            queue_depth,
        }
    }

    fn shutdown_worker(&mut self) {
        if let Some(handle) = self.worker.take() {
            self.shared.shutdown.store(true, Ordering::Release);
            let _ = handle.join();
        }
    }

    /// Worker time accumulated since the last attribution, folded into a
    /// [`PhaseTimes`] and marked as attributed. Called once per scan, so
    /// each scan's record carries the worker time of the batch it waited
    /// on (the batch evicted one scan earlier — the pipeline offset of the
    /// paper's Figure 13(b)).
    fn take_worker_delta(&mut self) -> PhaseTimes {
        let delta = self.worker_residual();
        self.worker_dequeue_seen = self.shared.dequeue_nanos.load(Ordering::Relaxed);
        self.worker_octree_seen = self.shared.octree_nanos.load(Ordering::Relaxed);
        delta
    }

    /// Worker time not yet attributed to any scan.
    fn worker_residual(&self) -> PhaseTimes {
        let dq = self.shared.dequeue_nanos.load(Ordering::Relaxed);
        let oc = self.shared.octree_nanos.load(Ordering::Relaxed);
        PhaseTimes {
            dequeue: Duration::from_nanos(dq.saturating_sub(self.worker_dequeue_seen)),
            octree_update: Duration::from_nanos(oc.saturating_sub(self.worker_octree_seen)),
            ..Default::default()
        }
    }
}

impl MappingSystem for ParallelOctoCache {
    fn name(&self) -> String {
        format!("octocache-parallel{}", self.ray_tracer.suffix())
    }

    fn grid(&self) -> &VoxelGrid {
        &self.grid
    }

    fn insert_scan(
        &mut self,
        origin: Point3,
        cloud: &[Point3],
        max_range: f64,
    ) -> Result<ScanReport, GeomError> {
        let cache_before = *self.cache.stats();

        // Phase 1: evict the previous batch and hand it to thread 2.
        let enq = self.evict_and_enqueue();

        // Phase 2: ray-trace the new scan, overlapping thread 2's update.
        let grid = self.grid;
        let t0 = Instant::now();
        insert::compute_update(&grid, origin, cloud, max_range, &mut self.batch)?;
        let deduped;
        let batch: &insert::VoxelBatch = match self.ray_tracer {
            RayTracer::Standard => &self.batch,
            RayTracer::Dedup => {
                deduped = rt::dedup_batch(&self.batch);
                &deduped
            }
        };
        let ray_tracing = t0.elapsed();

        // Phase 3: wait for thread 2 — the paper's thread-1 gap (including
        // any back-pressure absorbed during enqueue).
        let t1 = Instant::now();
        self.wait_for_worker();
        let wait = t1.elapsed() + enq.backpressure;

        // Phase 4: cache insertion under the octree mutex (seeding misses).
        let t2 = Instant::now();
        let (mutex_wait, tree_after) = {
            let guard = self.tree.lock();
            let mutex_wait = t2.elapsed();
            let cache = &mut self.cache;
            for u in batch.iter() {
                cache.insert(u.key, u.occupied, |k| guard.search(k));
            }
            (mutex_wait, guard.stats().snapshot())
        };
        let cache_insert = t2.elapsed();
        let observations = batch.len();

        // This scan's times carry the worker-side cost of the batch it
        // waited on, so cross-scan totals cover both threads.
        let times = PhaseTimes {
            ray_tracing,
            cache_insert,
            cache_evict: enq.evict,
            enqueue: enq.enqueue,
            wait,
            ..Default::default()
        } + self.take_worker_delta();

        let tree_delta = tree_after.since(&self.last_tree_stats);
        self.last_tree_stats = tree_after;
        let cache_delta = self.cache.stats().since(&cache_before);
        self.telemetry.record(ScanRecord {
            times,
            observations: observations as u64,
            cache_hits: cache_delta.hits,
            cache_misses: cache_delta.misses,
            cache_insertions: cache_delta.insertions,
            cache_evictions: cache_delta.evictions,
            octree_node_visits: tree_delta.node_visits,
            octree_leaf_updates: tree_delta.leaf_updates,
            octree_nodes_created: tree_delta.nodes_created,
            queue_depth_enqueue: enq.queue_depth,
            queue_depth_dequeue: self.shared.queue_depth_dequeue.load(Ordering::Relaxed),
            mutex_wait,
            ..Default::default()
        });

        Ok(ScanReport {
            times,
            observations,
            cache_hits: cache_delta.hits,
            octree_updates: enq.count,
        })
    }

    fn occupancy(&mut self, key: VoxelKey) -> Option<f32> {
        match self.cache.get(key) {
            Some(v) => Some(v),
            None => self.tree.lock().search(key),
        }
    }

    fn is_occupied(&mut self, key: VoxelKey) -> Option<bool> {
        let params = self.params;
        self.occupancy(key).map(|l| params.is_occupied(l))
    }

    fn finish(&mut self) -> PhaseTimes {
        // Flush the pending eviction batch…
        let enq1 = self.evict_and_enqueue();
        // …then drain everything left in the cache as a final batch.
        let t0 = Instant::now();
        let drained = self.cache.drain_all();
        let evict2 = t0.elapsed();
        let t1 = Instant::now();
        for chunk in drained.chunks(CHUNK_CELLS) {
            self.producer.push_blocking(Item::Chunk(chunk.to_vec()));
        }
        self.producer.push_blocking(Item::BatchEnd);
        self.batches_sent += 1;
        let enq2 = t1.elapsed();

        let t2 = Instant::now();
        self.wait_for_worker();
        let wait = t2.elapsed() + enq1.backpressure;

        let times = PhaseTimes {
            cache_evict: enq1.evict + evict2,
            enqueue: enq1.enqueue + enq2,
            wait,
            ..Default::default()
        };
        // The final flush belongs to no scan: fold its thread-1 times and
        // the worker time it triggered into the totals only.
        let with_worker = times + self.take_worker_delta();
        self.telemetry.add_times(with_worker);
        self.telemetry.flush();
        times
    }

    fn phase_times(&self) -> PhaseTimes {
        self.telemetry.totals() + self.worker_residual()
    }

    fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.telemetry.set_recorder(recorder);
    }

    fn phase_histograms(&self) -> Option<&PhaseHistograms> {
        Some(self.telemetry.histograms())
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        Some(*self.cache.stats())
    }

    fn tree_stats(&self) -> Option<StatsSnapshot> {
        Some(self.tree.lock().stats().snapshot())
    }

    fn take_tree(self: Box<Self>) -> OccupancyOcTree {
        (*self).into_tree()
    }
}

impl Drop for ParallelOctoCache {
    fn drop(&mut self) {
        self.shutdown_worker();
    }
}

/// Thread 2: dequeue evicted voxels and apply them to the octree, holding
/// the octree mutex per batch.
fn worker_loop(
    mut consumer: spsc::Consumer<Item>,
    tree: Arc<Mutex<OccupancyOcTree>>,
    shared: Arc<WorkerShared>,
) {
    'outer: loop {
        // Wait (untimed — this is idle time, not dequeue cost) for work.
        let first = loop {
            if let Some(item) = consumer.try_pop() {
                break item;
            }
            if shared.shutdown.load(Ordering::Acquire) {
                // Final double-check to avoid losing a racing push.
                match consumer.try_pop() {
                    Some(item) => break item,
                    None => break 'outer,
                }
            }
            std::thread::yield_now();
        };

        match first {
            Item::BatchEnd => {
                shared.batches_done.fetch_add(1, Ordering::Release);
            }
            Item::Chunk(chunk) => {
                // Depth at the start of the drain, counting the popped chunk.
                shared
                    .queue_depth_dequeue
                    .store(consumer.len() as u64 + 1, Ordering::Relaxed);
                // Per-cell `Instant` calls would dominate the work at these
                // batch sizes, so timing is per segment: total drain time,
                // minus measured producer-stall spins, split into octree
                // and dequeue components via a calibrated per-pop cost.
                let mut cells = chunk.len() as u64;
                let mut pops = 1u64;
                let mut stall = std::time::Duration::ZERO;
                let guard_start = Instant::now();
                let mut guard = tree.lock();
                for cell in &chunk {
                    guard.set_node_log_odds(cell.key, cell.log_odds);
                }
                loop {
                    match consumer.try_pop() {
                        Some(Item::Chunk(chunk)) => {
                            for cell in &chunk {
                                guard.set_node_log_odds(cell.key, cell.log_odds);
                            }
                            cells += chunk.len() as u64;
                            pops += 1;
                        }
                        Some(Item::BatchEnd) => {
                            pops += 1;
                            break;
                        }
                        None => {
                            // Producer is still enqueueing this batch; wait
                            // (measured, attributed to neither component).
                            let t = Instant::now();
                            let mut abandoned = false;
                            while consumer.is_empty() {
                                if shared.shutdown.load(Ordering::Acquire) {
                                    // Producer died mid-batch (panic on
                                    // thread 1); abandon the remainder.
                                    abandoned = true;
                                    break;
                                }
                                std::hint::spin_loop();
                            }
                            stall += t.elapsed();
                            if abandoned && consumer.is_empty() {
                                break;
                            }
                        }
                    }
                }
                let busy_ns = guard_start.elapsed().saturating_sub(stall).as_nanos() as u64;
                drop(guard);
                let dequeue_ns = pops * pop_cost_ns();
                shared
                    .octree_nanos
                    .fetch_add(busy_ns.saturating_sub(dequeue_ns), Ordering::Relaxed);
                shared
                    .dequeue_nanos
                    .fetch_add(dequeue_ns.min(busy_ns), Ordering::Relaxed);
                shared.cells_applied.fetch_add(cells, Ordering::Relaxed);
                shared.batches_done.fetch_add(1, Ordering::Release);
            }
        }
    }
}

/// One-time calibration of the SPSC pop cost, used to attribute worker time
/// between "dequeue" and "octree update" without per-cell timestamps
/// (Table 3 of the paper reports these as separate, both tiny).
fn pop_cost_ns() -> u64 {
    use std::sync::OnceLock;
    static POP_NS: OnceLock<u64> = OnceLock::new();
    *POP_NS.get_or_init(|| {
        const N: usize = 64 * 1024;
        let (mut tx, mut rx) = spsc::channel::<Item>(N);
        for _ in 0..N - 1 {
            tx.push(Item::BatchEnd).expect("capacity reserved");
        }
        let t = Instant::now();
        let mut popped = 0u64;
        while rx.try_pop().is_some() {
            popped += 1;
        }
        (t.elapsed().as_nanos() as u64 / popped.max(1)).max(1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system(w: usize, tau: usize) -> ParallelOctoCache {
        let grid = VoxelGrid::new(0.5, 8).unwrap();
        let config = CacheConfig::builder()
            .num_buckets(w)
            .tau(tau)
            .build()
            .unwrap();
        ParallelOctoCache::new(grid, OccupancyParams::default(), config)
    }

    fn wall_cloud(offset: f64) -> Vec<Point3> {
        (0..50)
            .map(|i| Point3::new(6.0, -1.5 + offset + i as f64 * 0.05, 0.25))
            .collect()
    }

    #[test]
    fn name() {
        let mut s = system(64, 4);
        assert_eq!(s.name(), "octocache-parallel");
        s.finish();
    }

    #[test]
    fn insert_and_query() {
        let mut s = system(1 << 10, 4);
        for i in 0..5 {
            s.insert_scan(Point3::ZERO, &wall_cloud(i as f64 * 0.1), 20.0)
                .unwrap();
            // Queries between scans must already see the latest scan.
            assert_eq!(
                s.is_occupied_at(Point3::new(6.0, 0.0, 0.25)).unwrap(),
                Some(true)
            );
            assert_eq!(
                s.is_occupied_at(Point3::new(3.0, 0.0, 0.25)).unwrap(),
                Some(false)
            );
        }
    }

    #[test]
    fn finish_completes_tree() {
        let mut s = system(1 << 8, 2);
        for i in 0..4 {
            s.insert_scan(Point3::ZERO, &wall_cloud(i as f64 * 0.05), 20.0)
                .unwrap();
        }
        s.finish();
        // The tree alone now answers (no cache consultation).
        s.with_tree(|t| {
            assert_eq!(
                t.is_occupied_at(Point3::new(6.0, 0.0, 0.25)).unwrap(),
                Some(true)
            );
        });
    }

    #[test]
    fn into_tree_matches_serial_and_octomap() {
        let grid = VoxelGrid::new(0.5, 8).unwrap();
        let params = OccupancyParams::default();
        let cfg = CacheConfig::builder()
            .num_buckets(1 << 8)
            .tau(2)
            .build()
            .unwrap();
        let mut par = ParallelOctoCache::new(grid, params, cfg);
        let mut ser = crate::serial::SerialOctoCache::new(grid, params, cfg);
        let mut plain = OccupancyOcTree::new(grid, params);

        for i in 0..6 {
            let origin = Point3::new(0.0, i as f64 * 0.2, 0.0);
            let cloud = wall_cloud(i as f64 * 0.03);
            par.insert_scan(origin, &cloud, 30.0).unwrap();
            ser.insert_scan(origin, &cloud, 30.0).unwrap();
            insert::insert_point_cloud(&mut plain, origin, &cloud, 30.0).unwrap();
        }
        let t_par = par.into_tree();
        let t_ser = ser.into_tree();
        for x in 100..160u16 {
            for y in 110..140u16 {
                let key = VoxelKey::new(x, y, 128);
                let a = t_par.search(key);
                let b = t_ser.search(key);
                let c = plain.search(key);
                match (a, b, c) {
                    (None, None, None) => {}
                    (Some(a), Some(b), Some(c)) => {
                        assert!((a - b).abs() < 1e-5, "{key}: par {a} vs ser {b}");
                        assert!((a - c).abs() < 1e-5, "{key}: par {a} vs plain {c}");
                    }
                    other => panic!("{key}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn worker_times_are_recorded() {
        let mut s = system(1 << 6, 1); // tiny cache: lots of evictions
        for i in 0..8 {
            s.insert_scan(Point3::ZERO, &wall_cloud(i as f64 * 0.07), 20.0)
                .unwrap();
        }
        s.finish();
        let t = s.phase_times();
        assert!(t.octree_update > std::time::Duration::ZERO);
        assert!(s.shared.cells_applied.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn drop_without_finish_is_clean() {
        let mut s = system(1 << 6, 2);
        s.insert_scan(Point3::ZERO, &wall_cloud(0.0), 20.0).unwrap();
        drop(s); // must join the worker without hanging or panicking
    }

    #[test]
    fn rt_variant_name_and_behaviour() {
        let grid = VoxelGrid::new(0.5, 8).unwrap();
        let cfg = CacheConfig::builder()
            .num_buckets(1 << 8)
            .tau(4)
            .build()
            .unwrap();
        let mut s = ParallelOctoCache::with_ray_tracer(
            grid,
            OccupancyParams::default(),
            cfg,
            RayTracer::Dedup,
        );
        assert_eq!(s.name(), "octocache-parallel-rt");
        let report = s.insert_scan(Point3::ZERO, &wall_cloud(0.0), 20.0).unwrap();
        // Dedup front-end: observations are distinct.
        assert!(report.observations > 0);
        s.finish();
    }
}
