//! The parallel OctoCache pipeline (paper §4.4, Figures 13(b)/14),
//! generalised to N octree-update workers.
//!
//! Thread 1 (the caller's thread) runs ray tracing, cache insertion, queries
//! and cache eviction; each of the N workers dequeues evicted voxels from
//! its own SPSC buffer and applies them to its own octree shard. Evicted
//! batches are split by top-level octant ([`OctantRouter`], the same
//! routing as [`crate::sharded::ShardedOctoMap`]), so shards are disjoint
//! and each worker's octree needs no cross-worker synchronisation — one
//! mutex per shard serialises that shard's reads (cache-miss seeding,
//! queries) against its worker's batch updates. With `N = 1` this is
//! exactly the paper's two-thread layout.
//!
//! The paper dismisses naive octree sharding because a sensor's scan cone
//! is spatially local, so per-scan batches are skewed and most shards idle
//! (§4.4). Sharding the *eviction stream* evades that objection: the cache
//! accumulates updates across many scans before τ-eviction, and the evicted
//! batch covers everything the sensor swept since the last eviction — a far
//! wider, better-balanced footprint. Per-scan skew is still measurable here
//! (`shard_skew` in the trace records) so the claim can be checked.
//!
//! ## Phase ordering and consistency
//!
//! The paper's timeline runs, per batch: ray tracing → cache insertion →
//! *queries* → cache eviction → (workers: octree update, overlapping the
//! next batch's ray tracing). Queries therefore always execute when the
//! shared buffers are empty: everything evicted earlier has been applied to
//! the shards, and everything newer is in the cache. To expose the same
//! guarantee through a call-based API, the parallel executor's scan path
//! ([`MappingSystem::insert_scan`] on [`ParallelOctoCache`]) **defers the
//! eviction of the just-inserted batch to the start of the next call**:
//!
//! 1. evict the previous batch, route it by octant, enqueue per worker,
//! 2. ray-trace the new scan — concurrently with the workers' updates,
//! 3. wait for every worker (the paper's thread-1 "gap", reported as
//!    [`PhaseTimes::wait`]),
//! 4. insert the new batch into the cache (octree reads are safe: all
//!    queues are empty and the shard mutexes are free).
//!
//! Between `insert_scan` calls the queues are thus always drained, so
//! queries are OctoMap-consistent at every point the caller can observe.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use octocache_geom::{GeomError, Point3, VoxelGrid, VoxelKey};
use octocache_octomap::stats::StatsSnapshot;
use octocache_octomap::{insert, rt, OccupancyOcTree, OccupancyParams, TreeLayout};
use octocache_telemetry::{EventBuffer, EventKind, EventLog, EventSink, PhaseTimes, ScanMetrics};
use parking_lot::{Mutex, MutexGuard};

use crate::cache::{CacheStats, EvictedCell, VoxelCache};
use crate::config::CacheConfig;
use crate::engine::{self, Engine, FlushTimes, ScanExecutor, ScanOutput};
#[cfg(any(test, feature = "fault-injection"))]
use crate::fault::FaultPlan;
use crate::fault::{FaultCounters, Integrity, IntegrityState, IntegrityTransition, PipelineError};
use crate::pipeline::{MappingSystem, RayTracer};
use crate::routing::{self, OctantRouter};
use crate::spsc::{self, Backoff, Producer};
use crate::supervisor::{PressureLevel, RestartPolicy, SupervisorParams};

/// Items flowing through a worker's buffer.
///
/// Evicted voxels travel in chunks — the C++ `readerwriterqueue` the paper
/// uses is itself a block-based ring, so chunking preserves its behaviour
/// while keeping the producer/consumer cacheline traffic per *chunk* rather
/// than per voxel.
#[derive(Debug)]
enum Item {
    /// A run of evicted voxels with their accumulated log-odds.
    Chunk(Vec<EvictedCell>),
    /// Marks the end of a batch; the worker releases its shard mutex here.
    BatchEnd,
}

/// Evicted voxels per queue message.
const CHUNK_CELLS: usize = 1024;

/// Counters shared with one worker thread.
#[derive(Debug, Default)]
struct WorkerShared {
    batches_done: AtomicU64,
    dequeue_nanos: AtomicU64,
    octree_nanos: AtomicU64,
    /// Time spent waiting for the first item of a batch (no work queued).
    idle_nanos: AtomicU64,
    cells_applied: AtomicU64,
    /// Queue depth (in chunk messages, including the one just popped)
    /// observed by the worker at the start of the most recent batch drain.
    queue_depth_dequeue: AtomicU64,
    shutdown: AtomicBool,
    /// Set (last) by the worker thread when it exits, for any reason.
    dead: AtomicBool,
    /// Set when the worker body unwound ([`std::panic::catch_unwind`]).
    panicked: AtomicBool,
    /// True while the worker is applying a batch (between popping a batch's
    /// first item and publishing `batches_done`).
    in_batch: AtomicBool,
    /// Batches the worker abandoned midway (shutdown observed or the
    /// mid-batch deadline expired before `BatchEnd` arrived).
    partial_batches: AtomicU64,
    /// Cells the worker had applied of the batch it abandoned.
    partial_cells_applied: AtomicU64,
    /// 0-based index of the abandoned batch.
    partial_batch_index: AtomicU64,
}

/// Thread-1 state for one octree-update worker: its queue producer, its
/// octree shard, the shared counters, and the attribution bookmarks.
#[derive(Debug)]
struct Worker {
    producer: Producer<Item>,
    tree: Arc<Mutex<OccupancyOcTree>>,
    shared: Arc<WorkerShared>,
    handle: Option<JoinHandle<()>>,
    /// Batches fully enqueued (closed with `BatchEnd`) to this worker.
    batches_sent: u64,
    /// `partial_batches` already folded into the pipeline counters.
    partials_seen: u64,
    /// Why this worker left the rotation; `Some` means its octant share is
    /// now applied inline on the producer thread.
    failed: Option<PipelineError>,
    /// Worker nanos already attributed to recorded scans; the difference to
    /// the live atomics is the not-yet-attributed residual.
    dequeue_seen: u64,
    octree_seen: u64,
    idle_seen: u64,
    /// This worker's generation-0 fault schedule; respawned generations
    /// keep only the periodic component ([`WorkerFaults::respawned`]).
    faults: WorkerFaults,
    /// Times this worker has been respawned (counts against
    /// [`RestartPolicy::max_restarts`]).
    restarts: u32,
}

/// Capacity of each worker's buffer in chunk messages (≥ a million voxels
/// in flight before the producer ever blocks — the paper reports enqueue
/// overhead as negligible, and a full queue would violate that).
const QUEUE_CAPACITY: usize = 1 << 12;

/// The parallel OctoCache mapping system: one mapping thread plus N
/// octree-update workers over octant shards, run through the shared
/// scan-lifecycle [`Engine`].
///
/// See the [module docs](self) for the phase ordering; the public API is the
/// same [`MappingSystem`] as every other backend.
pub type ParallelOctoCache = Engine<ParallelExecutor>;

/// The parallel scan-execution strategy behind [`ParallelOctoCache`]: the
/// voxel cache, the octant router and the N-worker octree pipeline,
/// including all fault detection and degraded-mode machinery. The scan
/// lifecycle around it (telemetry sequencing, snapshot republish, record
/// assembly) lives in the [`Engine`].
#[derive(Debug)]
pub struct ParallelExecutor {
    cache: VoxelCache,
    workers: Vec<Worker>,
    router: OctantRouter,
    grid: VoxelGrid,
    params: OccupancyParams,
    /// Octree storage layout of every worker shard (and any replacement
    /// or merge-target tree).
    layout: TreeLayout,
    ray_tracer: RayTracer,
    batch: insert::VoxelBatch,
    /// Reusable per-shard partition buffers for batch routing. The previous
    /// batch's shares are retained until the next send, so a dead worker's
    /// share can be re-applied inline (cells carry absolute log-odds, so
    /// re-application is idempotent).
    route_bufs: Vec<Vec<EvictedCell>>,
    /// The whole retained batch (the single-worker share, and the routing
    /// source for `route_bufs`).
    evict_buf: Vec<EvictedCell>,
    /// Deadline for every producer-side bounded wait
    /// ([`CacheConfig::stall_timeout`]).
    stall_timeout: Duration,
    /// Cumulative fault counters (`fault_counters`).
    faults: FaultCounters,
    /// Counter values already attributed to recorded scans.
    faults_reported: FaultCounters,
    /// Map-consistency verdict (`integrity`) plus its transition history,
    /// so heals stay visible after the sticky flag recovers.
    integrity: IntegrityState,
    /// Worker-respawn budget and backoff
    /// ([`CacheConfig::max_restarts`], [`CacheConfig::restart_backoff`]).
    restart_policy: RestartPolicy,
    /// Nanos spent respawning workers, not yet attributed to a scan.
    restart_ns_pending: u64,
    /// First pipeline fault observed during the current scan, surfaced by
    /// `insert_scan` exactly once ([`ScanOutput::deferred`]).
    scan_error: Option<PipelineError>,
    /// Summed shard counters at the end of the previous scan, for per-scan
    /// deltas.
    last_tree_stats: StatsSnapshot,
    /// Shared sub-scan event sink when built with `CacheConfig::events(true)`.
    /// Lane 0 (the producer) is the cache's buffer; worker `i` owns lane
    /// `i + 1` and drains per batch.
    event_sink: Option<Arc<EventSink>>,
}

/// What `evict_and_enqueue` produced.
///
/// Back-pressure — waiting for a worker to make room in a full queue — is
/// reported separately from the enqueue cost proper, matching the paper's
/// Table 3 where enqueue is the pure buffer-write overhead.
struct EnqueueOutcome {
    /// Evicted (and enqueued) voxels.
    count: usize,
    evict: Duration,
    enqueue: Duration,
    backpressure: Duration,
    /// Largest producer-side queue depth seen per worker while enqueueing,
    /// in chunk messages.
    queue_depths: Vec<u64>,
    /// Evicted cells routed to each worker's shard.
    shard_sizes: Vec<u64>,
}

/// A consistent read view over every octree shard, returned by
/// `ParallelOctoCache::with_tree`: all shard mutexes are held for the
/// view's lifetime, and point queries route through the same
/// [`OctantRouter`] the writers use.
pub struct ShardView<'a> {
    guards: Vec<MutexGuard<'a, OccupancyOcTree>>,
    router: OctantRouter,
    grid: VoxelGrid,
    params: OccupancyParams,
}

impl ShardView<'_> {
    /// Number of octree shards in the view.
    pub fn num_shards(&self) -> usize {
        self.guards.len()
    }

    /// Direct access to shard `i`'s octree.
    pub fn shard(&self, i: usize) -> &OccupancyOcTree {
        &self.guards[i]
    }

    /// Accumulated log-odds of a voxel, from the shard that owns it.
    pub fn search(&self, key: VoxelKey) -> Option<f32> {
        self.guards[self.router.shard_of(key)].search(key)
    }

    /// Occupancy decision for a voxel key.
    pub fn is_occupied(&self, key: VoxelKey) -> Option<bool> {
        self.search(key).map(|l| self.params.is_occupied(l))
    }

    /// Occupancy decision at a world point.
    ///
    /// # Errors
    ///
    /// Propagates [`GeomError`] when the point is outside the grid.
    pub fn is_occupied_at(&self, p: Point3) -> Result<Option<bool>, GeomError> {
        Ok(self.is_occupied(self.grid.key_of(p)?))
    }

    /// Total allocated nodes across all shards.
    pub fn num_nodes(&self) -> usize {
        self.guards.iter().map(|g| g.num_nodes()).sum()
    }
}

impl std::fmt::Debug for ShardView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardView")
            .field("num_shards", &self.guards.len())
            .finish_non_exhaustive()
    }
}

/// How a guarded push ended.
enum PushOutcome {
    /// Enqueued; carries the post-push queue depth in messages.
    Pushed(u64),
    /// The worker thread exited; the item was not delivered.
    Dead,
    /// The bounded backoff expired; carries how long the producer waited.
    Stalled(Duration),
}

/// Pushes one item with bounded back-pressure: spins → yields → gives up
/// after `stall_timeout`, and bails out early if the worker dies. Stall
/// time is added to `backpressure`.
fn push_guarded(
    w: &mut Worker,
    item: Item,
    backpressure: &mut Duration,
    stall_timeout: Duration,
) -> PushOutcome {
    use crate::spsc::Full;
    let mut item = item;
    loop {
        if w.shared.dead.load(Ordering::Acquire) {
            return PushOutcome::Dead;
        }
        match w.producer.push(item) {
            Ok(()) => return PushOutcome::Pushed(w.producer.len() as u64),
            Err(Full(v)) => {
                item = v;
                let tb = Instant::now();
                let mut backoff = Backoff::new(stall_timeout);
                loop {
                    if w.shared.dead.load(Ordering::Acquire) {
                        *backpressure += tb.elapsed();
                        return PushOutcome::Dead;
                    }
                    if w.producer.len() < w.producer.capacity() {
                        break;
                    }
                    if !backoff.snooze() {
                        *backpressure += tb.elapsed();
                        return PushOutcome::Stalled(backoff.waited());
                    }
                }
                *backpressure += tb.elapsed();
            }
        }
    }
}

/// Re-applies `share` to `tree` under its mutex. Evicted cells carry the
/// voxel's absolute accumulated log-odds and `set_node_log_odds` overwrites,
/// so this restores exactly the state a healthy worker would have produced,
/// whatever prefix of the batch was already applied.
fn reapply_share(tree: &Mutex<OccupancyOcTree>, share: &[EvictedCell]) {
    let mut guard = tree.lock();
    for cell in share {
        guard.set_node_log_odds(cell.key, cell.log_odds);
    }
}

/// Takes a dead worker out of rotation: joins the thread, classifies the
/// death (panic vs mid-batch abandonment), re-applies the retained batch
/// share inline, and records the first error of the scan.
fn fail_dead_worker(
    w: &mut Worker,
    index: usize,
    share: &[EvictedCell],
    faults: &mut FaultCounters,
    integrity: &mut IntegrityState,
    scan_error: &mut Option<PipelineError>,
) {
    if let Some(handle) = w.handle.take() {
        let _ = handle.join();
    }
    let batch = w.shared.batches_done.load(Ordering::Acquire);
    let partials = w.shared.partial_batches.load(Ordering::Acquire);
    let err = if w.shared.panicked.load(Ordering::Acquire) {
        faults.worker_panics += 1;
        PipelineError::WorkerPanicked {
            worker: index,
            batch,
        }
    } else if partials > w.partials_seen {
        faults.partial_batches += partials - w.partials_seen;
        let applied = w.shared.partial_cells_applied.load(Ordering::Acquire);
        PipelineError::PartialScan {
            worker: index,
            batch: w.shared.partial_batch_index.load(Ordering::Acquire),
            cells_dropped: (share.len() as u64).saturating_sub(applied),
        }
    } else {
        // Exited without a panic or a recorded partial (it saw shutdown
        // between batches); report the in-flight batch.
        PipelineError::WorkerPanicked {
            worker: index,
            batch,
        }
    };
    w.partials_seen = partials;
    // The thread has exited, so the shard mutex is free (parking_lot does
    // not poison) and nothing races the inline re-apply.
    reapply_share(&w.tree, share);
    faults.cells_reapplied += share.len() as u64;
    if !share.is_empty() {
        faults.batches_rerouted += 1;
    }
    integrity.escalate(Integrity::Degraded);
    if scan_error.is_none() {
        *scan_error = Some(err.clone());
    }
    w.failed = Some(err);
}

/// Takes a stalled worker out of rotation after a bounded wait expired. The
/// thread may be wedged (it cannot be joined here), so the re-apply is
/// best-effort: if its shard mutex is unavailable the share is unconfirmed
/// and the map is [`Integrity::Compromised`].
fn fail_stalled_worker(
    w: &mut Worker,
    index: usize,
    share: &[EvictedCell],
    waited: Duration,
    faults: &mut FaultCounters,
    integrity: &mut IntegrityState,
    scan_error: &mut Option<PipelineError>,
) {
    faults.stall_timeouts += 1;
    // Ask the worker to exit whenever it wakes; the handle is joined later
    // only once the worker is observed dead (a wedged thread must never
    // hang the producer).
    w.shared.shutdown.store(true, Ordering::Release);
    let err = PipelineError::QueueStalled {
        worker: index,
        waited,
    };
    match w.tree.try_lock() {
        Some(mut guard) => {
            for cell in share {
                guard.set_node_log_odds(cell.key, cell.log_odds);
            }
            drop(guard);
            faults.cells_reapplied += share.len() as u64;
            if !share.is_empty() {
                faults.batches_rerouted += 1;
            }
            integrity.escalate(Integrity::Degraded);
        }
        // The wedged worker holds the shard mutex; the share could not be
        // confirmed applied.
        None => integrity.escalate(Integrity::Compromised),
    }
    if scan_error.is_none() {
        *scan_error = Some(err.clone());
    }
    w.failed = Some(err);
}

/// Applies a batch share inline for a worker that is out of rotation
/// (degraded mode). If the worker may still be alive (a stalled thread that
/// never exited), it gets a bounded window to die; applying newer values
/// while it could still write stale ones compromises the map.
fn apply_inline(
    w: &mut Worker,
    index: usize,
    share: &[EvictedCell],
    stall_timeout: Duration,
    faults: &mut FaultCounters,
    integrity: &mut IntegrityState,
    scan_error: &mut Option<PipelineError>,
) {
    if w.handle.is_some() {
        let mut backoff = Backoff::new(stall_timeout);
        while !w.shared.dead.load(Ordering::Acquire) {
            if !backoff.snooze() {
                break;
            }
        }
        if w.shared.dead.load(Ordering::Acquire) {
            if let Some(handle) = w.handle.take() {
                let _ = handle.join();
            }
        } else {
            integrity.escalate(Integrity::Compromised);
        }
    }
    if share.is_empty() {
        return;
    }
    match w.tree.try_lock() {
        Some(mut guard) => {
            for cell in share {
                guard.set_node_log_odds(cell.key, cell.log_odds);
            }
        }
        None => {
            // The wedged worker holds the shard mutex; these cells cannot
            // be applied at all.
            faults.partial_batches += 1;
            integrity.escalate(Integrity::Compromised);
            let err = PipelineError::PartialScan {
                worker: index,
                batch: w.batches_sent,
                cells_dropped: share.len() as u64,
            };
            if scan_error.is_none() {
                *scan_error = Some(err);
            }
            return;
        }
    }
    faults.batches_rerouted += 1;
    faults.cells_reapplied += share.len() as u64;
}

/// Per-worker fault-injection schedule, derived from the instance's
/// [`FaultPlan`]. Without `cfg(any(test, feature = "fault-injection"))`
/// this is a fieldless no-op and [`WorkerFaults::at_batch_start`] compiles
/// to nothing.
#[cfg(any(test, feature = "fault-injection"))]
#[derive(Debug, Default, Clone, Copy)]
struct WorkerFaults {
    /// Panic at the start of this batch index.
    kill_at: Option<u64>,
    /// Sleep this many µs at the start of this batch index.
    stall_at: Option<(u64, u64)>,
    /// Panic every N batches: fires when `(batch + 1) % every == 0`, so a
    /// respawned thread (local batch index restarts at 0) survives
    /// `every - 1` batches before dying again.
    kill_every: Option<u64>,
}

#[cfg(not(any(test, feature = "fault-injection")))]
#[derive(Debug, Default, Clone, Copy)]
struct WorkerFaults;

impl WorkerFaults {
    #[cfg(any(test, feature = "fault-injection"))]
    fn for_worker(plan: &FaultPlan, index: usize, num_workers: usize) -> Self {
        let mut wf = WorkerFaults::default();
        if let Some(k) = plan.kill {
            if k.worker % num_workers == index {
                wf.kill_at = Some(k.batch);
            }
        }
        if let Some(s) = plan.stall {
            if s.worker % num_workers == index {
                wf.stall_at = Some((s.batch, s.micros));
            }
        }
        if let Some(k) = plan.kill_every {
            if k.worker % num_workers == index {
                wf.kill_every = Some(k.every);
            }
        }
        wf
    }

    /// The schedule for a respawned generation: one-shot faults already
    /// fired on generation 0 (and a respawned thread's batch index restarts
    /// at 0, so they would re-fire spuriously); only the periodic kill
    /// survives — it is the chaos workload that exhausts restart budgets.
    fn respawned(&self) -> Self {
        #[cfg(any(test, feature = "fault-injection"))]
        {
            WorkerFaults {
                kill_every: self.kill_every,
                ..Default::default()
            }
        }
        #[cfg(not(any(test, feature = "fault-injection")))]
        {
            *self
        }
    }

    /// Fires any fault scheduled for `batch` (kill = panic, stall = sleep).
    #[inline]
    fn at_batch_start(&self, batch: u64) {
        #[cfg(any(test, feature = "fault-injection"))]
        {
            if self.kill_at == Some(batch) {
                panic!("fault injection: killing worker at batch {batch}");
            }
            if let Some((b, micros)) = self.stall_at {
                if b == batch {
                    std::thread::sleep(Duration::from_micros(micros));
                }
            }
            if let Some(every) = self.kill_every {
                if (batch + 1).is_multiple_of(every) {
                    panic!("fault injection: periodic kill at batch {batch}");
                }
            }
        }
        #[cfg(not(any(test, feature = "fault-injection")))]
        let _ = batch;
    }
}

impl ParallelOctoCache {
    /// Creates a parallel OctoCache with the standard ray tracer and one
    /// octree-update worker (the paper's two-thread layout).
    pub fn new(grid: VoxelGrid, params: OccupancyParams, config: CacheConfig) -> Self {
        Self::with_ray_tracer(grid, params, config, RayTracer::Standard)
    }

    /// Creates a parallel OctoCache with a chosen ray-tracing front-end
    /// (`RayTracer::Dedup` gives the paper's parallel OctoCache-RT) and one
    /// worker.
    pub fn with_ray_tracer(
        grid: VoxelGrid,
        params: OccupancyParams,
        config: CacheConfig,
        ray_tracer: RayTracer,
    ) -> Self {
        Self::with_workers(grid, params, config, ray_tracer, 1)
    }

    /// Creates a parallel OctoCache with `num_workers` ∈ {1, 2, 4, 8}
    /// octree-update workers, each owning one octant shard of the key
    /// space.
    ///
    /// A worker whose thread cannot be spawned does not abort construction:
    /// its octant share is applied inline on the producer thread, the
    /// downgrade is counted ([`FaultCounters::spawn_failures`]) and the
    /// instance starts [`Integrity::Degraded`].
    ///
    /// # Panics
    ///
    /// Panics for worker counts other than 1, 2, 4 or 8 (the
    /// [`OctantRouter`] validity rule).
    pub fn with_workers(
        grid: VoxelGrid,
        params: OccupancyParams,
        config: CacheConfig,
        ray_tracer: RayTracer,
        num_workers: usize,
    ) -> Self {
        let router = OctantRouter::new(num_workers, &grid);
        let layout = config.resolved_tree_layout();
        let stall_timeout = config.stall_timeout();
        // Workers give a silent producer 4x the producer's own stall budget
        // before abandoning a mid-batch wait, so under a producer failure
        // the producer-side deadline always fires first.
        let mid_batch_deadline = stall_timeout.saturating_mul(4);
        #[cfg(any(test, feature = "fault-injection"))]
        let plan = config.fault_plan().unwrap_or_default();
        let event_sink: Option<Arc<EventSink>> = if config.events() {
            Some(EventSink::new())
        } else {
            None
        };
        let mut faults = FaultCounters::default();
        let mut integrity = IntegrityState::default();
        let workers: Vec<Worker> = (0..num_workers)
            .map(|i| {
                let tree = Arc::new(Mutex::new(OccupancyOcTree::with_layout(
                    grid, params, layout,
                )));
                let shared = Arc::new(WorkerShared::default());
                let capacity = QUEUE_CAPACITY;
                #[cfg(any(test, feature = "fault-injection"))]
                let capacity = if plan.fill_ring.map(|w| w % num_workers) == Some(i) {
                    // Near-zero ring: back-pressure fires on every chunk,
                    // exercising the bounded backoff without any failure.
                    2
                } else {
                    capacity
                };
                let (producer, consumer) = spsc::channel::<Item>(capacity);
                #[cfg(any(test, feature = "fault-injection"))]
                let wf = WorkerFaults::for_worker(&plan, i, num_workers);
                #[cfg(not(any(test, feature = "fault-injection")))]
                let wf = WorkerFaults;
                let inject_spawn_fail = {
                    #[cfg(any(test, feature = "fault-injection"))]
                    {
                        plan.fail_spawn.map(|w| w % num_workers) == Some(i)
                    }
                    #[cfg(not(any(test, feature = "fault-injection")))]
                    {
                        false
                    }
                };
                let spawned = if inject_spawn_fail {
                    Err(std::io::Error::other(
                        "fault injection: forced spawn failure",
                    ))
                } else {
                    let tree = Arc::clone(&tree);
                    let shared = Arc::clone(&shared);
                    // Worker lanes are 1-based; lane 0 is the producer.
                    let events = event_sink.as_ref().map(|s| s.buffer(i as u32 + 1));
                    std::thread::Builder::new()
                        .name(format!("octocache-octree-{i}"))
                        .spawn(move || {
                            worker_thread(consumer, tree, shared, mid_batch_deadline, wf, events)
                        })
                };
                match spawned {
                    Ok(handle) => Worker {
                        producer,
                        tree,
                        shared,
                        handle: Some(handle),
                        batches_sent: 0,
                        partials_seen: 0,
                        failed: None,
                        dequeue_seen: 0,
                        octree_seen: 0,
                        idle_seen: 0,
                        faults: wf,
                        restarts: 0,
                    },
                    Err(e) => {
                        // Degrade instead of panicking: this worker's
                        // octants are served inline from the start.
                        faults.spawn_failures += 1;
                        integrity.escalate(Integrity::Degraded);
                        Worker {
                            producer,
                            tree,
                            shared,
                            handle: None,
                            batches_sent: 0,
                            partials_seen: 0,
                            failed: Some(PipelineError::WorkerSpawn {
                                worker: i,
                                reason: e.to_string(),
                            }),
                            dequeue_seen: 0,
                            octree_seen: 0,
                            idle_seen: 0,
                            faults: wf,
                            restarts: 0,
                        }
                    }
                }
            })
            .collect();
        let mut cache = VoxelCache::new(config, params);
        if let Some(sink) = &event_sink {
            cache.attach_events(sink.buffer(0));
        }
        let restart_policy = RestartPolicy::from_config(cache.config());
        Engine::from_executor(ParallelExecutor {
            cache,
            workers,
            router,
            grid,
            params,
            layout,
            ray_tracer,
            batch: insert::VoxelBatch::new(),
            route_bufs: vec![Vec::new(); num_workers],
            evict_buf: Vec::new(),
            stall_timeout,
            faults,
            faults_reported: FaultCounters::default(),
            integrity,
            restart_policy,
            restart_ns_pending: 0,
            scan_error: None,
            last_tree_stats: StatsSnapshot::default(),
            event_sink,
        })
    }

    /// The cache layer.
    pub fn cache(&self) -> &VoxelCache {
        &self.exec.cache
    }

    /// Cache behaviour counters.
    pub fn cache_stats(&self) -> &CacheStats {
        self.exec.cache.stats()
    }

    /// Number of octree-update workers (= octree shards).
    pub fn num_workers(&self) -> usize {
        self.exec.workers.len()
    }

    /// Workers still in rotation (alive and feeding their own shard).
    pub fn live_workers(&self) -> usize {
        self.exec.live_workers()
    }

    /// The map-consistency verdict after any faults. [`Integrity::Degraded`]
    /// means parallelism was lost but the map is still voxel-for-voxel what
    /// the serial backend would hold; [`Integrity::Compromised`] means it
    /// may have diverged.
    pub fn integrity(&self) -> Integrity {
        self.exec.integrity.current()
    }

    /// Every recorded change of the integrity verdict, in scan order —
    /// the only place a degrade-then-heal run differs from a clean one.
    pub fn integrity_history(&self) -> Vec<IntegrityTransition> {
        self.exec.integrity.history().to_vec()
    }

    /// Cumulative fault and degraded-mode counters.
    pub fn fault_counters(&self) -> FaultCounters {
        self.exec.faults
    }

    /// Runs `f` with shared access to the backing octree shards (every
    /// shard mutex is held for the duration). Pending cache contents are
    /// not included; call [`MappingSystem::finish`] first for a complete
    /// tree.
    pub fn with_tree<R>(&self, f: impl FnOnce(&ShardView<'_>) -> R) -> R {
        let view = ShardView {
            guards: self.exec.workers.iter().map(|w| w.tree.lock()).collect(),
            router: self.exec.router,
            grid: self.exec.grid,
            params: self.exec.params,
        };
        f(&view)
    }

    /// Shuts the workers down and returns the merged octree (flushing the
    /// cache first, so the tree is complete). Shards populate disjoint
    /// top-level octant groups, so the merge is structural.
    pub fn into_tree(mut self) -> OccupancyOcTree {
        self.finish();
        self.exec.take_tree()
    }
}

/// The backend display name: `octocache-parallel[-rt][xN]` (the `xN`
/// suffix only for N > 1, so the single-worker layout keeps its
/// historical name).
fn backend_name(ray_tracer: RayTracer, num_workers: usize) -> String {
    let mut name = format!("octocache-parallel{}", ray_tracer.suffix());
    if num_workers > 1 {
        name.push_str(&format!("x{num_workers}"));
    }
    name
}

impl ParallelExecutor {
    /// Workers still in rotation (alive and feeding their own shard).
    fn live_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.failed.is_none()).count()
    }

    /// Whether the supervisor may respawn this worker: its thread must have
    /// provably exited (`handle` is `None` — a stalled worker's wedged
    /// thread keeps its handle and could still write stale values), its
    /// failure must be a clean-exit class, and its per-worker restart
    /// budget must not be exhausted.
    fn respawn_eligible(w: &Worker, policy: &RestartPolicy) -> bool {
        if w.handle.is_some() || w.restarts >= policy.max_restarts {
            return false;
        }
        matches!(
            w.failed,
            Some(
                PipelineError::WorkerPanicked { .. }
                    | PipelineError::WorkerSpawn { .. }
                    | PipelineError::PartialScan { .. }
            )
        )
    }

    /// Supervisor pass: respawn dead workers whose restart budget allows
    /// it, then heal the integrity verdict once every worker is back in
    /// rotation. Runs at the top of each scan, when all queues are drained
    /// and the retained batch share has already been re-applied inline —
    /// so the fresh thread starts from an exact shard and an empty ring.
    fn try_respawn(&mut self) {
        if !self.restart_policy.enabled() {
            return;
        }
        let policy = self.restart_policy;
        let mid_batch_deadline = self.stall_timeout.saturating_mul(4);
        for i in 0..self.workers.len() {
            if !Self::respawn_eligible(&self.workers[i], &policy) {
                continue;
            }
            let t0 = Instant::now();
            if !policy.backoff.is_zero() {
                std::thread::sleep(policy.backoff);
            }
            let w = &mut self.workers[i];
            let shared = Arc::new(WorkerShared::default());
            let (producer, consumer) = spsc::channel::<Item>(QUEUE_CAPACITY);
            let wf = w.faults.respawned();
            let spawned = {
                let tree = Arc::clone(&w.tree);
                let shared = Arc::clone(&shared);
                let events = self.event_sink.as_ref().map(|s| s.buffer(i as u32 + 1));
                std::thread::Builder::new()
                    .name(format!("octocache-octree-{i}"))
                    .spawn(move || {
                        worker_thread(consumer, tree, shared, mid_batch_deadline, wf, events)
                    })
            };
            let w = &mut self.workers[i];
            match spawned {
                Ok(handle) => {
                    // Fresh ring, fresh counters: the new generation's
                    // `batches_done` starts at 0, so `batches_sent` must
                    // restart with it. Attribution bookmarks reset too —
                    // the old generation's nanos were already taken.
                    w.producer = producer;
                    w.shared = shared;
                    w.handle = Some(handle);
                    w.batches_sent = 0;
                    w.partials_seen = 0;
                    w.failed = None;
                    w.dequeue_seen = 0;
                    w.octree_seen = 0;
                    w.idle_seen = 0;
                    w.restarts += 1;
                    self.faults.restarts += 1;
                }
                Err(_) => {
                    // Spawn failed again: burn one unit of the budget (so
                    // a persistently failing environment converges to the
                    // permanent-degrade path) and stay failed.
                    w.restarts += 1;
                    self.faults.spawn_failures += 1;
                }
            }
            self.restart_ns_pending += t0.elapsed().as_nanos() as u64;
        }
        if self.workers.iter().all(|w| w.failed.is_none()) && self.integrity.heal() {
            self.faults.heals += 1;
        }
    }

    /// Waits (bounded) until every live worker has applied every batch
    /// enqueued to it — the thread-1 "gap" of the paper's Figure 13(b),
    /// extended to the worker set. A worker that dies here has its retained
    /// batch share re-applied inline; one that exceeds [`Self::stall_timeout`]
    /// is taken out of rotation as stalled.
    fn wait_for_workers(&mut self) {
        let n = self.workers.len();
        let stall_timeout = self.stall_timeout;
        let ParallelExecutor {
            workers,
            route_bufs,
            evict_buf,
            faults,
            integrity,
            scan_error,
            ..
        } = self;
        for (i, w) in workers.iter_mut().enumerate() {
            if w.failed.is_some() {
                continue;
            }
            let share: &[EvictedCell] = if n == 1 { evict_buf } else { &route_bufs[i] };
            let mut backoff = Backoff::new(stall_timeout);
            loop {
                if w.shared.batches_done.load(Ordering::Acquire) >= w.batches_sent {
                    break;
                }
                if w.shared.dead.load(Ordering::Acquire) {
                    fail_dead_worker(w, i, share, faults, integrity, scan_error);
                    break;
                }
                if !backoff.snooze() {
                    fail_stalled_worker(
                        w,
                        i,
                        share,
                        backoff.waited(),
                        faults,
                        integrity,
                        scan_error,
                    );
                    break;
                }
            }
        }
    }

    /// Routes the retained batch ([`Self::evict_buf`]) by octant and
    /// enqueues each shard's share to its worker, closing the batch with a
    /// `BatchEnd` on **every** live queue (even empty shares) so
    /// `batches_done` stays aligned. Shares of workers out of rotation are
    /// applied inline; a worker that dies or stalls mid-send is failed over
    /// the same way.
    fn send_batch(&mut self) -> EnqueueOutcome {
        let t1 = Instant::now();
        let n = self.workers.len();
        let mut backpressure = Duration::ZERO;
        let mut queue_depths = vec![0u64; n];
        let mut shard_sizes = vec![0u64; n];

        if n > 1 {
            let ParallelExecutor {
                route_bufs,
                evict_buf,
                router,
                ..
            } = self;
            for buf in route_bufs.iter_mut() {
                buf.clear();
            }
            for cell in evict_buf.iter() {
                route_bufs[router.shard_of(cell.key)].push(*cell);
            }
        }

        let count = self.evict_buf.len();
        let stall_timeout = self.stall_timeout;
        let ParallelExecutor {
            cache,
            workers,
            route_bufs,
            evict_buf,
            faults,
            integrity,
            scan_error,
            ..
        } = self;
        for (i, w) in workers.iter_mut().enumerate() {
            let share: &[EvictedCell] = if n == 1 { evict_buf } else { &route_bufs[i] };
            shard_sizes[i] = share.len() as u64;
            if w.failed.is_some() {
                apply_inline(w, i, share, stall_timeout, faults, integrity, scan_error);
                continue;
            }
            if w.shared.dead.load(Ordering::Acquire) {
                fail_dead_worker(w, i, share, faults, integrity, scan_error);
                continue;
            }
            let mut failed_mid_send = false;
            for chunk in share.chunks(CHUNK_CELLS) {
                match push_guarded(
                    w,
                    Item::Chunk(chunk.to_vec()),
                    &mut backpressure,
                    stall_timeout,
                ) {
                    PushOutcome::Pushed(depth) => {
                        queue_depths[i] = queue_depths[i].max(depth);
                        if let Some(buf) = cache.events_mut() {
                            buf.emit_for(i as u32 + 1, EventKind::QueueEnqueue, depth);
                        }
                    }
                    PushOutcome::Dead => {
                        fail_dead_worker(w, i, share, faults, integrity, scan_error);
                        failed_mid_send = true;
                        break;
                    }
                    PushOutcome::Stalled(waited) => {
                        fail_stalled_worker(w, i, share, waited, faults, integrity, scan_error);
                        failed_mid_send = true;
                        break;
                    }
                }
            }
            if failed_mid_send {
                continue;
            }
            match push_guarded(w, Item::BatchEnd, &mut backpressure, stall_timeout) {
                PushOutcome::Pushed(depth) => {
                    queue_depths[i] = queue_depths[i].max(depth);
                    w.batches_sent += 1;
                }
                PushOutcome::Dead => fail_dead_worker(w, i, share, faults, integrity, scan_error),
                PushOutcome::Stalled(waited) => {
                    fail_stalled_worker(w, i, share, waited, faults, integrity, scan_error)
                }
            }
        }
        if !backpressure.is_zero() {
            if let Some(buf) = cache.events_mut() {
                buf.emit_plain(EventKind::QueueStall, backpressure.as_nanos() as u64);
            }
        }
        let enqueue = t1.elapsed().saturating_sub(backpressure);
        EnqueueOutcome {
            count,
            evict: Duration::ZERO,
            enqueue,
            backpressure,
            queue_depths,
            shard_sizes,
        }
    }

    /// Evicts the pending batch into the retained buffer and enqueues it
    /// for the workers, sampling the producer-side queue depths along the
    /// way.
    fn evict_and_enqueue(&mut self) -> EnqueueOutcome {
        let t0 = Instant::now();
        self.evict_buf.clear();
        self.cache.evict_into(&mut self.evict_buf);
        let evict = t0.elapsed();
        let mut out = self.send_batch();
        out.evict = evict;
        out
    }

    fn shutdown_workers(&mut self) {
        for w in &self.workers {
            if w.handle.is_some() {
                w.shared.shutdown.store(true, Ordering::Release);
            }
        }
        for w in &mut self.workers {
            if let Some(handle) = w.handle.take() {
                if w.failed.is_none() || w.shared.dead.load(Ordering::Acquire) {
                    let _ = handle.join();
                }
                // else: detach — a wedged worker must never hang shutdown;
                // it exits on its own when (if) it wakes and sees the flag.
            }
            // Fold any mid-batch abandonment observed during shutdown into
            // the counters: an abandoned batch is reported, never silent.
            let partials = w.shared.partial_batches.load(Ordering::Acquire);
            if partials > w.partials_seen {
                self.faults.partial_batches += partials - w.partials_seen;
                w.partials_seen = partials;
                self.integrity.escalate(Integrity::Compromised);
            }
        }
    }

    /// Worker time accumulated since the last attribution, folded into a
    /// [`PhaseTimes`] plus per-worker busy/idle nanos, and marked as
    /// attributed. Called once per scan, so each scan's record carries the
    /// worker time of the batch it waited on (the batch evicted one scan
    /// earlier — the pipeline offset of the paper's Figure 13(b)).
    fn take_worker_delta(&mut self) -> (PhaseTimes, Vec<u64>, Vec<u64>) {
        let mut times = PhaseTimes::default();
        let mut busy = Vec::with_capacity(self.workers.len());
        let mut idle = Vec::with_capacity(self.workers.len());
        for w in &mut self.workers {
            let dq = w.shared.dequeue_nanos.load(Ordering::Relaxed);
            let oc = w.shared.octree_nanos.load(Ordering::Relaxed);
            let id = w.shared.idle_nanos.load(Ordering::Relaxed);
            let d_dq = dq.saturating_sub(w.dequeue_seen);
            let d_oc = oc.saturating_sub(w.octree_seen);
            let d_id = id.saturating_sub(w.idle_seen);
            w.dequeue_seen = dq;
            w.octree_seen = oc;
            w.idle_seen = id;
            times.dequeue += Duration::from_nanos(d_dq);
            times.octree_update += Duration::from_nanos(d_oc);
            busy.push(d_dq + d_oc);
            idle.push(d_id);
        }
        (times, busy, idle)
    }

    /// Worker time not yet attributed to any scan.
    fn worker_residual(&self) -> PhaseTimes {
        let mut times = PhaseTimes::default();
        for w in &self.workers {
            let dq = w.shared.dequeue_nanos.load(Ordering::Relaxed);
            let oc = w.shared.octree_nanos.load(Ordering::Relaxed);
            times.dequeue += Duration::from_nanos(dq.saturating_sub(w.dequeue_seen));
            times.octree_update += Duration::from_nanos(oc.saturating_sub(w.octree_seen));
        }
        times
    }

    /// Sums the instrumentation counters of every shard (locking each; a
    /// wedged worker's shard is skipped rather than risking a hang).
    fn summed_tree_stats(&self) -> StatsSnapshot {
        let mut total = StatsSnapshot::default();
        for w in &self.workers {
            let guard = if w.failed.is_some() {
                w.tree.try_lock()
            } else {
                Some(w.tree.lock())
            };
            if let Some(g) = guard {
                total.merge(&g.stats().snapshot());
            }
        }
        total
    }
}

impl ScanExecutor for ParallelExecutor {
    fn backend_name(&self) -> String {
        backend_name(self.ray_tracer, self.workers.len())
    }

    fn grid(&self) -> &VoxelGrid {
        &self.grid
    }

    fn execute_scan(
        &mut self,
        origin: Point3,
        cloud: &[Point3],
        max_range: f64,
        scan_seq: u64,
        metrics: &mut ScanMetrics,
    ) -> Result<ScanOutput, PipelineError> {
        let cache_before = *self.cache.stats();
        self.integrity.set_scan(scan_seq);
        if let Some(buf) = self.cache.events_mut() {
            buf.set_scan(scan_seq);
        }

        // Phase 0: the supervisor pass — respawn any dead worker whose
        // restart budget allows it, healing the integrity verdict if the
        // whole rotation recovers. A no-op unless `max_restarts > 0`.
        self.try_respawn();

        // Phase 1: evict the previous batch and hand it to the workers.
        let enq = self.evict_and_enqueue();

        // Phase 2: ray-trace the new scan, overlapping the workers' update.
        let grid = self.grid;
        let t0 = Instant::now();
        insert::compute_update(&grid, origin, cloud, max_range, &mut self.batch)?;
        let deduped: Option<insert::VoxelBatch> = match self.ray_tracer {
            RayTracer::Standard => None,
            RayTracer::Dedup => Some(rt::dedup_batch(&self.batch)),
        };
        let ray_tracing = t0.elapsed();

        // Phase 3: wait for every worker — the paper's thread-1 gap
        // (including any back-pressure absorbed during enqueue).
        let t1 = Instant::now();
        self.wait_for_workers();
        let wait = t1.elapsed() + enq.backpressure;
        let batch: &insert::VoxelBatch = deduped.as_ref().unwrap_or(&self.batch);

        // Phase 4: cache insertion under the shard mutexes (seeding misses
        // from the owning shard). All queues are drained, so the locks are
        // uncontended — except a wedged worker's, which is skipped (its
        // shard seeds as unknown; the map is already Compromised).
        let t2 = Instant::now();
        let (mutex_wait, tree_after, memory_bytes) = {
            let guards: Vec<Option<MutexGuard<'_, OccupancyOcTree>>> = self
                .workers
                .iter()
                .map(|w| {
                    if w.failed.is_some() {
                        w.tree.try_lock()
                    } else {
                        Some(w.tree.lock())
                    }
                })
                .collect();
            if guards.iter().any(|g| g.is_none()) {
                self.integrity.escalate(Integrity::Compromised);
            }
            let mutex_wait = t2.elapsed();
            let router = self.router;
            let cache = &mut self.cache;
            for u in batch.iter() {
                cache.insert(u.key, u.occupied, |k| {
                    guards[router.shard_of(k)]
                        .as_ref()
                        .and_then(|g| g.search(k))
                });
            }
            let mut tree_after = StatsSnapshot::default();
            let mut memory_bytes = 0u64;
            for g in guards.iter().flatten() {
                tree_after.merge(&g.stats().snapshot());
                memory_bytes += g.memory_usage() as u64;
            }
            (mutex_wait, tree_after, memory_bytes)
        };
        let cache_insert = t2.elapsed();
        let observations = batch.len();

        // This scan's times carry the worker-side cost of the batch it
        // waited on, so cross-scan totals cover both sides of the pipeline.
        let (worker_times, worker_busy_ns, worker_idle_ns) = self.take_worker_delta();
        let times = PhaseTimes {
            ray_tracing,
            cache_insert,
            cache_evict: enq.evict,
            enqueue: enq.enqueue,
            wait,
            ..Default::default()
        } + worker_times;

        let tree_delta = tree_after.since(&self.last_tree_stats);
        self.last_tree_stats = tree_after;
        let cache_delta = self.cache.stats().since(&cache_before);
        // Fault counters accrued since the last record (including
        // construction-time spawn failures, which land on scan 0).
        let fault_delta = self.faults.since(&self.faults_reported);
        self.faults_reported = self.faults;
        *metrics = ScanMetrics {
            times,
            observations: observations as u64,
            queue_depth_enqueue: enq.queue_depths.iter().copied().max().unwrap_or(0),
            queue_depth_dequeue: self
                .workers
                .iter()
                .map(|w| w.shared.queue_depth_dequeue.load(Ordering::Relaxed))
                .max()
                .unwrap_or(0),
            mutex_wait,
            shard_skew: routing::skew(&enq.shard_sizes),
            worker_queue_depths: enq.queue_depths,
            shard_batch_sizes: enq.shard_sizes,
            worker_busy_ns,
            worker_idle_ns,
            worker_panics: fault_delta.worker_panics,
            spawn_failures: fault_delta.spawn_failures,
            stall_timeouts: fault_delta.stall_timeouts,
            partial_batches: fault_delta.partial_batches,
            batches_rerouted: fault_delta.batches_rerouted,
            degraded: self.integrity.is_degraded(),
            restarts: fault_delta.restarts,
            heals: fault_delta.heals,
            restart_ns: std::mem::take(&mut self.restart_ns_pending),
            ..Default::default()
        };
        engine::stamp_cache_delta(metrics, &cache_delta);
        engine::stamp_tree_delta(metrics, &tree_delta);
        engine::stamp_tree_shape(metrics, memory_bytes, self.layout.name());

        if let Some(buf) = self.cache.events_mut() {
            buf.drain();
        }

        // A fault that degraded (but did not abort) this scan is deferred:
        // the engine records the scan, republishes, and then surfaces it
        // exactly once; the map state behind it is described by
        // `integrity`.
        Ok(ScanOutput {
            cache_hits: cache_delta.hits,
            octree_updates: enq.count,
            deferred: self.scan_error.take(),
        })
    }

    fn occupancy(&mut self, key: VoxelKey) -> Option<f32> {
        match self.cache.get(key) {
            Some(v) => Some(v),
            None => {
                let w = &self.workers[self.router.shard_of(key)];
                if w.failed.is_some() {
                    // Never block on a possibly-wedged worker's mutex.
                    w.tree.try_lock().and_then(|g| g.search(key))
                } else {
                    w.tree.lock().search(key)
                }
            }
        }
    }

    fn is_occupied(&mut self, key: VoxelKey) -> Option<bool> {
        let params = self.params;
        self.occupancy(key).map(|l| params.is_occupied(l))
    }

    fn flush(&mut self) -> FlushTimes {
        // Flush the pending eviction batch, and wait it out so the retained
        // copy stays valid for the whole batch (one batch in flight at a
        // time is what makes dead-worker re-application exact).
        let enq1 = self.evict_and_enqueue();
        let t_w = Instant::now();
        self.wait_for_workers();
        let wait1 = t_w.elapsed();
        // …then drain everything left in the cache as a final batch.
        let t0 = Instant::now();
        self.evict_buf = self.cache.drain_all();
        let evict2 = t0.elapsed();
        let enq2 = self.send_batch();

        let t1 = Instant::now();
        self.wait_for_workers();
        let wait = wait1 + t1.elapsed() + enq1.backpressure + enq2.backpressure;

        let times = PhaseTimes {
            cache_evict: enq1.evict + evict2,
            enqueue: enq1.enqueue + enq2.enqueue,
            wait,
            ..Default::default()
        };
        // The final flush belongs to no scan: fold its thread-1 times and
        // the worker time it triggered into the totals only (`recorded`),
        // never into what the `finish` caller gets back.
        let recorded = times + self.take_worker_delta().0;
        if let Some(buf) = self.cache.events_mut() {
            buf.drain();
        }
        FlushTimes {
            returned: times,
            recorded,
        }
    }

    fn residual_times(&self) -> PhaseTimes {
        self.worker_residual()
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        Some(*self.cache.stats())
    }

    fn tree_stats(&self) -> Option<StatsSnapshot> {
        Some(self.summed_tree_stats())
    }

    fn integrity(&self) -> Integrity {
        self.integrity.current()
    }

    fn integrity_transitions(&self) -> Vec<IntegrityTransition> {
        self.integrity.history().to_vec()
    }

    fn fault_counters(&self) -> FaultCounters {
        self.faults
    }

    fn supervisor_params(&self) -> SupervisorParams {
        SupervisorParams::from_config(self.cache.config())
    }

    fn resident_bytes(&self) -> u64 {
        // Between scans every queue is drained, so the shard mutexes are
        // free — except a wedged worker's, whose shard is skipped (its
        // size is frozen anyway: nothing can be applied to it).
        let mut total = self.cache.memory_usage() as u64;
        for w in &self.workers {
            let guard = if w.failed.is_some() {
                w.tree.try_lock()
            } else {
                Some(w.tree.lock())
            };
            if let Some(g) = guard {
                total += g.memory_usage() as u64;
            }
        }
        total
    }

    fn relieve_memory(&mut self, level: PressureLevel) {
        // Runs between scans (queues drained, retained batch already
        // applied), so applying drained cells inline under the shard
        // mutexes is race-free and map-neutral: cells carry absolute
        // log-odds and `set_node_log_odds` overwrites. The retained batch
        // share predates this drain, but a later re-apply only ever uses
        // the share of the batch in flight at failure time, which
        // post-dates it.
        if level >= PressureLevel::Critical {
            let cells = self.cache.drain_all();
            for (i, w) in self.workers.iter().enumerate() {
                let guard = if w.failed.is_some() {
                    w.tree.try_lock()
                } else {
                    Some(w.tree.lock())
                };
                // A wedged worker's cells are undeliverable; the map is
                // already Compromised by the wedge itself.
                if let Some(mut g) = guard {
                    for cell in cells.iter().filter(|c| self.router.shard_of(c.key) == i) {
                        g.set_node_log_odds(cell.key, cell.log_odds);
                    }
                }
            }
        }
        // Pruning the shards is the step that durably shrinks resident
        // bytes; merged-away nodes re-expand on demand.
        for w in &self.workers {
            let guard = if w.failed.is_some() {
                w.tree.try_lock()
            } else {
                Some(w.tree.lock())
            };
            if let Some(mut g) = guard {
                g.prune();
            }
        }
    }

    /// Builds a self-contained read tree: every shard merged (structural,
    /// disjoint octant groups) with the cache's accumulated values overlaid
    /// on top. Called between scans, when all queues are drained and the
    /// shard mutexes are free; a wedged worker's shard is skipped via
    /// `try_lock` (matching the degraded [`MappingSystem::occupancy`] path —
    /// the map is already [`Integrity::Compromised`] by then).
    fn snapshot_tree(&self) -> OccupancyOcTree {
        let mut merged = OccupancyOcTree::with_layout(self.grid, self.params, self.layout);
        for w in &self.workers {
            let guard = if w.failed.is_some() {
                w.tree.try_lock()
            } else {
                Some(w.tree.lock())
            };
            if let Some(g) = guard {
                merged
                    .merge_disjoint_top_level(&g)
                    .expect("workers partition key space disjointly");
            }
        }
        engine::overlay_cache(&mut merged, &self.cache);
        merged
    }

    fn take_events(&mut self) -> Option<EventLog> {
        // Worker buffers drain at every batch boundary and queues are empty
        // between `insert_scan` calls, so the sink already holds everything
        // once the producer buffer is flushed.
        if let Some(buf) = self.cache.events_mut() {
            buf.drain();
        }
        self.event_sink.as_ref().map(|s| s.take())
    }

    /// Shuts the workers down and merges the shards (the engine has already
    /// flushed the cache through [`ScanExecutor::flush`]). Shards populate
    /// disjoint top-level octant groups, so the merge is structural.
    fn take_tree(mut self) -> OccupancyOcTree {
        self.shutdown_workers();
        let grid = self.grid;
        let params = self.params;
        let layout = self.layout;
        let workers = std::mem::take(&mut self.workers);
        drop(self); // drops the producers & our Arc clones
        let mut trees = workers.into_iter().map(|w| match Arc::try_unwrap(w.tree) {
            Ok(mutex) => mutex.into_inner(),
            // A wedged (unjoinable) worker still holds an Arc clone; take
            // its shard without risking a hang on its mutex. The map was
            // already flagged Compromised when the worker wedged.
            Err(arc) => match arc.try_lock() {
                Some(mut guard) => std::mem::replace(
                    &mut *guard,
                    OccupancyOcTree::with_layout(grid, params, layout),
                ),
                None => OccupancyOcTree::with_layout(grid, params, layout),
            },
        });
        let first = trees
            .next()
            .unwrap_or_else(|| OccupancyOcTree::with_layout(grid, params, layout));
        trees.fold(first, |mut merged, tree| {
            merged
                .merge_disjoint_top_level(&tree)
                .expect("workers partition key space disjointly");
            merged
        })
    }
}

impl Drop for ParallelExecutor {
    fn drop(&mut self) {
        self.shutdown_workers();
    }
}

/// The worker thread body: runs [`worker_loop`] under `catch_unwind` so a
/// panic (organic or injected) never unwinds into the runtime, and always
/// publishes the death flags last — the producer detects `dead`, joins, and
/// re-applies the retained batch.
fn worker_thread(
    consumer: spsc::Consumer<Item>,
    tree: Arc<Mutex<OccupancyOcTree>>,
    shared: Arc<WorkerShared>,
    mid_batch_deadline: Duration,
    faults: WorkerFaults,
    events: Option<EventBuffer>,
) {
    // The buffer drains on drop, so even a panicking worker's events reach
    // the sink (the unwind runs destructors before `catch_unwind` returns).
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        worker_loop(consumer, &tree, &shared, mid_batch_deadline, faults, events)
    }));
    if result.is_err() {
        shared.panicked.store(true, Ordering::Release);
    }
    shared.in_batch.store(false, Ordering::Release);
    shared.dead.store(true, Ordering::Release);
}

/// An octree-update worker: dequeue evicted voxels and apply them to this
/// worker's octree shard, holding the shard mutex per batch.
fn worker_loop(
    mut consumer: spsc::Consumer<Item>,
    tree: &Mutex<OccupancyOcTree>,
    shared: &WorkerShared,
    mid_batch_deadline: Duration,
    faults: WorkerFaults,
    mut events: Option<EventBuffer>,
) {
    let mut batch_index: u64 = 0;
    'outer: loop {
        // Wait for work; this is idle time, not dequeue cost, and is
        // reported separately so per-worker utilization is measurable.
        let idle_start = Instant::now();
        let first = loop {
            if let Some(item) = consumer.try_pop() {
                break Some(item);
            }
            if shared.shutdown.load(Ordering::Acquire) {
                // Final double-check to avoid losing a racing push.
                break consumer.try_pop();
            }
            std::thread::yield_now();
        };
        shared
            .idle_nanos
            .fetch_add(idle_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let first = match first {
            Some(item) => item,
            None => break 'outer,
        };
        shared.in_batch.store(true, Ordering::Release);
        faults.at_batch_start(batch_index);
        // Workers stamp the batch index as the scan; one batch is enqueued
        // per producer scan, so the two sequences align (plus the final
        // flush batches from `finish`).
        if let Some(buf) = &mut events {
            buf.set_scan(batch_index);
        }

        match first {
            Item::BatchEnd => {
                if let Some(buf) = &mut events {
                    buf.emit_plain(EventKind::BatchBegin, 0);
                    buf.emit_plain(EventKind::BatchEnd, 0);
                    buf.drain();
                }
                shared.batches_done.fetch_add(1, Ordering::Release);
            }
            Item::Chunk(chunk) => {
                // Depth at the start of the drain, counting the popped chunk.
                let depth = consumer.len() as u64 + 1;
                shared.queue_depth_dequeue.store(depth, Ordering::Relaxed);
                if let Some(buf) = &mut events {
                    buf.emit_plain(EventKind::BatchBegin, 0);
                    buf.emit_plain(EventKind::QueueDequeue, depth);
                }
                // Per-cell `Instant` calls would dominate the work at these
                // batch sizes, so timing is per segment: total drain time,
                // minus measured producer-stall spins, split into octree
                // and dequeue components via a calibrated per-pop cost.
                let mut cells = chunk.len() as u64;
                let mut pops = 1u64;
                let mut stall = std::time::Duration::ZERO;
                let mut abandoned_mid_batch = false;
                let guard_start = Instant::now();
                let mut guard = tree.lock();
                for cell in &chunk {
                    guard.set_node_log_odds(cell.key, cell.log_odds);
                }
                loop {
                    match consumer.try_pop() {
                        Some(Item::Chunk(chunk)) => {
                            if let Some(buf) = &mut events {
                                buf.emit_plain(EventKind::QueueDequeue, consumer.len() as u64 + 1);
                            }
                            for cell in &chunk {
                                guard.set_node_log_odds(cell.key, cell.log_odds);
                            }
                            cells += chunk.len() as u64;
                            pops += 1;
                        }
                        Some(Item::BatchEnd) => {
                            pops += 1;
                            break;
                        }
                        None => {
                            // Producer is still enqueueing this batch; wait
                            // (measured, attributed to neither component),
                            // bounded: a dead or wedged producer must not
                            // pin this worker forever.
                            let t = Instant::now();
                            let mut abandoned = false;
                            let mut backoff = Backoff::new(mid_batch_deadline);
                            while consumer.is_empty() {
                                if shared.shutdown.load(Ordering::Acquire) {
                                    // Producer is gone (panic on thread 1 or
                                    // shutdown mid-batch).
                                    abandoned = true;
                                    break;
                                }
                                if !backoff.snooze() {
                                    abandoned = true;
                                    break;
                                }
                            }
                            let waited = t.elapsed();
                            stall += waited;
                            if let Some(buf) = &mut events {
                                buf.emit_plain(EventKind::QueueStall, waited.as_nanos() as u64);
                            }
                            if abandoned && consumer.is_empty() {
                                abandoned_mid_batch = true;
                                break;
                            }
                        }
                    }
                }
                let busy_ns = guard_start.elapsed().saturating_sub(stall).as_nanos() as u64;
                drop(guard);
                let dequeue_ns = pops * pop_cost_ns();
                shared
                    .octree_nanos
                    .fetch_add(busy_ns.saturating_sub(dequeue_ns), Ordering::Relaxed);
                shared
                    .dequeue_nanos
                    .fetch_add(dequeue_ns.min(busy_ns), Ordering::Relaxed);
                shared.cells_applied.fetch_add(cells, Ordering::Relaxed);
                if let Some(buf) = &mut events {
                    // Close the span even on abandonment so begins/ends pair
                    // up; `cells` is what was actually applied.
                    buf.emit_plain(EventKind::BatchEnd, cells);
                    buf.drain();
                }
                if abandoned_mid_batch {
                    // Record exactly what was cut short — which batch, and
                    // how much of it was applied — then exit. A live
                    // producer re-applies the retained batch and reports
                    // `PipelineError::PartialScan`; a dying one folds these
                    // counters in during shutdown. Never a silent drop.
                    shared
                        .partial_batch_index
                        .store(batch_index, Ordering::Relaxed);
                    shared.partial_cells_applied.store(cells, Ordering::Relaxed);
                    shared.partial_batches.fetch_add(1, Ordering::Release);
                    break 'outer;
                }
                shared.batches_done.fetch_add(1, Ordering::Release);
            }
        }
        batch_index += 1;
        shared.in_batch.store(false, Ordering::Release);
    }
}

/// One-time calibration of the SPSC pop cost, used to attribute worker time
/// between "dequeue" and "octree update" without per-cell timestamps
/// (Table 3 of the paper reports these as separate, both tiny).
fn pop_cost_ns() -> u64 {
    use std::sync::OnceLock;
    static POP_NS: OnceLock<u64> = OnceLock::new();
    *POP_NS.get_or_init(|| {
        const N: usize = 64 * 1024;
        let (mut tx, mut rx) = spsc::channel::<Item>(N);
        for _ in 0..N - 1 {
            tx.push(Item::BatchEnd).expect("capacity reserved");
        }
        let t = Instant::now();
        let mut popped = 0u64;
        while rx.try_pop().is_some() {
            popped += 1;
        }
        (t.elapsed().as_nanos() as u64 / popped.max(1)).max(1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system(w: usize, tau: usize) -> ParallelOctoCache {
        let grid = VoxelGrid::new(0.5, 8).unwrap();
        let config = CacheConfig::builder()
            .num_buckets(w)
            .tau(tau)
            .build()
            .unwrap();
        ParallelOctoCache::new(grid, OccupancyParams::default(), config)
    }

    fn system_n(workers: usize, w: usize, tau: usize) -> ParallelOctoCache {
        let grid = VoxelGrid::new(0.5, 8).unwrap();
        let config = CacheConfig::builder()
            .num_buckets(w)
            .tau(tau)
            .build()
            .unwrap();
        ParallelOctoCache::with_workers(
            grid,
            OccupancyParams::default(),
            config,
            RayTracer::Standard,
            workers,
        )
    }

    fn wall_cloud(offset: f64) -> Vec<Point3> {
        (0..50)
            .map(|i| Point3::new(6.0, -1.5 + offset + i as f64 * 0.05, 0.25))
            .collect()
    }

    /// A cloud spanning several octants (both sides of the grid centre on
    /// every axis), so multi-worker runs exercise more than one shard.
    fn spread_cloud(offset: f64) -> Vec<Point3> {
        (0..60)
            .map(|i| {
                let a = i as f64 * 0.41 + offset;
                Point3::new(
                    12.0 * a.sin(),
                    12.0 * a.cos(),
                    if i % 2 == 0 { 4.0 } else { -4.0 },
                )
            })
            .collect()
    }

    #[test]
    fn name() {
        let mut s = system(64, 4);
        assert_eq!(s.name(), "octocache-parallel");
        s.finish();
        let mut s4 = system_n(4, 64, 4);
        assert_eq!(s4.name(), "octocache-parallelx4");
        s4.finish();
    }

    #[test]
    fn insert_and_query() {
        let mut s = system(1 << 10, 4);
        for i in 0..5 {
            s.insert_scan(Point3::ZERO, &wall_cloud(i as f64 * 0.1), 20.0)
                .unwrap();
            // Queries between scans must already see the latest scan.
            assert_eq!(
                s.is_occupied_at(Point3::new(6.0, 0.0, 0.25)).unwrap(),
                Some(true)
            );
            assert_eq!(
                s.is_occupied_at(Point3::new(3.0, 0.0, 0.25)).unwrap(),
                Some(false)
            );
        }
    }

    #[test]
    fn insert_and_query_with_four_workers() {
        let mut s = system_n(4, 1 << 6, 1); // tiny cache: constant eviction
        let mut last = Vec::new();
        for i in 0..6 {
            let origin = Point3::new(0.0, 0.0, if i % 2 == 0 { 1.0 } else { -1.0 });
            last = spread_cloud(i as f64 * 0.13);
            s.insert_scan(origin, &last, 40.0).unwrap();
        }
        // The latest scan's endpoints span several octants, so these
        // queries exercise every shard's cache-miss fall-through. All of
        // them are known to the map, and most were just hit.
        let mut occupied = 0;
        for p in &last {
            match s.is_occupied_at(*p).unwrap() {
                Some(true) => occupied += 1,
                Some(false) => {}
                None => panic!("endpoint {p:?} unknown to the map"),
            }
        }
        assert!(occupied > last.len() / 2, "{occupied}/{}", last.len());
    }

    #[test]
    fn finish_completes_tree() {
        let mut s = system(1 << 8, 2);
        for i in 0..4 {
            s.insert_scan(Point3::ZERO, &wall_cloud(i as f64 * 0.05), 20.0)
                .unwrap();
        }
        s.finish();
        // The tree alone now answers (no cache consultation).
        s.with_tree(|t| {
            assert_eq!(
                t.is_occupied_at(Point3::new(6.0, 0.0, 0.25)).unwrap(),
                Some(true)
            );
        });
    }

    #[test]
    fn into_tree_matches_serial_and_octomap() {
        let grid = VoxelGrid::new(0.5, 8).unwrap();
        let params = OccupancyParams::default();
        let cfg = CacheConfig::builder()
            .num_buckets(1 << 8)
            .tau(2)
            .build()
            .unwrap();
        let mut par = ParallelOctoCache::new(grid, params, cfg);
        let mut ser = crate::serial::SerialOctoCache::new(grid, params, cfg);
        let mut plain = OccupancyOcTree::new(grid, params);

        for i in 0..6 {
            let origin = Point3::new(0.0, i as f64 * 0.2, 0.0);
            let cloud = wall_cloud(i as f64 * 0.03);
            par.insert_scan(origin, &cloud, 30.0).unwrap();
            ser.insert_scan(origin, &cloud, 30.0).unwrap();
            insert::insert_point_cloud(&mut plain, origin, &cloud, 30.0).unwrap();
        }
        let t_par = par.into_tree();
        let t_ser = ser.into_tree();
        for x in 100..160u16 {
            for y in 110..140u16 {
                let key = VoxelKey::new(x, y, 128);
                let a = t_par.search(key);
                let b = t_ser.search(key);
                let c = plain.search(key);
                match (a, b, c) {
                    (None, None, None) => {}
                    (Some(a), Some(b), Some(c)) => {
                        assert!((a - b).abs() < 1e-5, "{key}: par {a} vs ser {b}");
                        assert!((a - c).abs() < 1e-5, "{key}: par {a} vs plain {c}");
                    }
                    other => panic!("{key}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn multi_worker_into_tree_matches_single_worker() {
        let grid = VoxelGrid::new(0.5, 8).unwrap();
        let params = OccupancyParams::default();
        let cfg = CacheConfig::builder()
            .num_buckets(1 << 6)
            .tau(1)
            .build()
            .unwrap();
        let build = |n: usize| {
            let mut s = ParallelOctoCache::with_workers(grid, params, cfg, RayTracer::Standard, n);
            for i in 0..5 {
                s.insert_scan(Point3::ZERO, &spread_cloud(i as f64 * 0.29), 40.0)
                    .unwrap();
            }
            s.into_tree()
        };
        let t1 = build(1);
        for n in [2, 4, 8] {
            let tn = build(n);
            assert_eq!(tn.num_nodes(), t1.num_nodes(), "{n} workers");
            for x in (0..256u16).step_by(7) {
                for y in (0..256u16).step_by(11) {
                    let key = VoxelKey::new(x, y, 136);
                    match (t1.search(key), tn.search(key)) {
                        (None, None) => {}
                        (Some(a), Some(b)) => {
                            assert!((a - b).abs() < 1e-6, "{key} ({n} workers)")
                        }
                        other => panic!("{key} ({n} workers): {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn worker_times_are_recorded() {
        let mut s = system(1 << 6, 1); // tiny cache: lots of evictions
        for i in 0..8 {
            s.insert_scan(Point3::ZERO, &wall_cloud(i as f64 * 0.07), 20.0)
                .unwrap();
        }
        s.finish();
        let t = s.phase_times();
        assert!(t.octree_update > std::time::Duration::ZERO);
        assert!(
            s.exec.workers[0]
                .shared
                .cells_applied
                .load(Ordering::Relaxed)
                > 0
        );
    }

    #[test]
    fn per_worker_telemetry_is_recorded() {
        use octocache_telemetry::SharedRecorder;
        let recorder = SharedRecorder::new();
        let mut s = system_n(4, 1 << 6, 1);
        s.set_recorder(Box::new(recorder.clone()));
        for i in 0..6 {
            s.insert_scan(Point3::ZERO, &spread_cloud(i as f64 * 0.17), 40.0)
                .unwrap();
        }
        s.finish();
        let records = recorder.records();
        assert!(!records.is_empty());
        for r in &records {
            assert_eq!(r.worker_queue_depths.len(), 4);
            assert_eq!(r.shard_batch_sizes.len(), 4);
            assert_eq!(r.worker_busy_ns.len(), 4);
            assert_eq!(r.worker_idle_ns.len(), 4);
            assert!(r.shard_skew >= 1.0, "skew {}", r.shard_skew);
        }
        // The spread cloud reaches several octants, so after the first
        // couple of evictions more than one shard must have received cells.
        let active: usize = (0..4)
            .filter(|&i| records.iter().any(|r| r.shard_batch_sizes[i] > 0))
            .count();
        assert!(active > 1, "expected >1 active shard, got {active}");
        // Busy time must have accrued on every active shard's worker.
        assert!(records
            .iter()
            .any(|r| r.worker_busy_ns.iter().any(|&b| b > 0)));
    }

    #[test]
    fn drop_without_finish_is_clean() {
        let mut s = system_n(4, 1 << 6, 2);
        s.insert_scan(Point3::ZERO, &spread_cloud(0.0), 40.0)
            .unwrap();
        drop(s); // must join every worker without hanging or panicking
    }

    #[test]
    fn rt_variant_name_and_behaviour() {
        let grid = VoxelGrid::new(0.5, 8).unwrap();
        let cfg = CacheConfig::builder()
            .num_buckets(1 << 8)
            .tau(4)
            .build()
            .unwrap();
        let mut s = ParallelOctoCache::with_ray_tracer(
            grid,
            OccupancyParams::default(),
            cfg,
            RayTracer::Dedup,
        );
        assert_eq!(s.name(), "octocache-parallel-rt");
        let report = s.insert_scan(Point3::ZERO, &wall_cloud(0.0), 20.0).unwrap();
        // Dedup front-end: observations are distinct.
        assert!(report.observations > 0);
        s.finish();

        let mut s2 = ParallelOctoCache::with_workers(
            grid,
            OccupancyParams::default(),
            cfg,
            RayTracer::Dedup,
            2,
        );
        assert_eq!(s2.name(), "octocache-parallel-rtx2");
        s2.finish();
    }

    #[test]
    #[should_panic(expected = "must be 1, 2, 4 or 8")]
    fn rejects_invalid_worker_counts() {
        system_n(3, 64, 4);
    }

    // ---- fault injection (hooks are active under cfg(test)) ----

    use crate::fault::{FaultAt, StallAt};
    use octocache_octomap::compare;

    /// A pipeline with a fault plan, a tiny cache (constant eviction) and a
    /// short stall budget so stall tests converge quickly.
    fn faulty_system(workers: usize, plan: FaultPlan, stall_ms: u64) -> ParallelOctoCache {
        let grid = VoxelGrid::new(0.5, 8).unwrap();
        let config = CacheConfig::builder()
            .num_buckets(1 << 6)
            .tau(1)
            .stall_timeout(Duration::from_millis(stall_ms))
            .fault_plan(plan)
            .build()
            .unwrap();
        ParallelOctoCache::with_workers(
            grid,
            OccupancyParams::default(),
            config,
            RayTracer::Standard,
            workers,
        )
    }

    /// Replays the standard fault-test scan sequence, collecting errors.
    fn run_scans(s: &mut ParallelOctoCache) -> Vec<PipelineError> {
        let mut errors = Vec::new();
        for i in 0..6 {
            let origin = Point3::new(0.0, 0.0, if i % 2 == 0 { 1.0 } else { -1.0 });
            if let Err(e) = s.insert_scan(origin, &spread_cloud(i as f64 * 0.13), 40.0) {
                errors.push(e);
            }
        }
        errors
    }

    /// The no-fault reference tree for [`run_scans`]'s sequence.
    fn reference_tree(workers: usize) -> OccupancyOcTree {
        let mut s = faulty_system(workers, FaultPlan::default(), 5_000);
        assert!(run_scans(&mut s).is_empty());
        s.into_tree()
    }

    #[test]
    fn spawn_failure_degrades_to_inline_apply() {
        let plan = FaultPlan {
            fail_spawn: Some(1),
            ..Default::default()
        };
        let mut s = faulty_system(4, plan, 1_000);
        assert_eq!(s.live_workers(), 3);
        // Scans succeed throughout: the failed worker's share is applied
        // inline, so degraded mode is not an error the caller must handle.
        assert!(run_scans(&mut s).is_empty());
        assert_eq!(s.integrity(), Integrity::Degraded);
        let f = s.fault_counters();
        assert_eq!(f.spawn_failures, 1);
        assert_eq!(f.worker_panics, 0);
        let d = compare::diff(&reference_tree(4), &s.into_tree(), 0.0);
        assert!(
            d.is_identical(),
            "inline apply diverged: {} value / {} coverage mismatches",
            d.value_mismatches,
            d.coverage_mismatches
        );
    }

    #[test]
    fn killed_worker_is_reported_and_rerouted() {
        let plan = FaultPlan {
            kill: Some(FaultAt {
                worker: 1,
                batch: 1,
            }),
            ..Default::default()
        };
        let mut s = faulty_system(4, plan, 1_000);
        let errors = run_scans(&mut s);
        // Exactly one scan surfaces the fault; subsequent scans run in
        // degraded mode and succeed.
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(
            matches!(errors[0], PipelineError::WorkerPanicked { worker: 1, .. }),
            "{:?}",
            errors[0]
        );
        assert_eq!(s.live_workers(), 3);
        assert_eq!(s.integrity(), Integrity::Degraded);
        let f = s.fault_counters();
        assert_eq!(f.worker_panics, 1);
        // The retained batch was re-applied: the map must be exact.
        let d = compare::diff(&reference_tree(4), &s.into_tree(), 0.0);
        assert!(
            d.is_identical(),
            "re-apply diverged: {} value / {} coverage mismatches",
            d.value_mismatches,
            d.coverage_mismatches
        );
    }

    #[test]
    fn killed_single_worker_still_completes_the_run() {
        let plan = FaultPlan {
            kill: Some(FaultAt {
                worker: 0,
                batch: 2,
            }),
            ..Default::default()
        };
        let mut s = faulty_system(1, plan, 1_000);
        let errors = run_scans(&mut s);
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert_eq!(s.live_workers(), 0);
        assert_eq!(s.integrity(), Integrity::Degraded);
        let d = compare::diff(&reference_tree(1), &s.into_tree(), 0.0);
        assert!(d.is_identical());
    }

    #[test]
    fn stalled_worker_times_out_into_typed_error() {
        // Worker 0 sleeps 400 ms at batch 1; the producer's stall budget is
        // 20 ms, so the bounded wait expires long before the worker wakes.
        let plan = FaultPlan {
            stall: Some(StallAt {
                worker: 0,
                batch: 1,
                micros: 400_000,
            }),
            ..Default::default()
        };
        let mut s = faulty_system(2, plan, 20);
        let errors = run_scans(&mut s);
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(
            matches!(errors[0], PipelineError::QueueStalled { worker: 0, .. }),
            "{:?}",
            errors[0]
        );
        assert!(s.fault_counters().stall_timeouts >= 1);
        assert!(s.integrity().is_degraded());
        // The sleeping worker does not hold its shard mutex, so the share
        // was re-applied inline and the map stays exact (Degraded, not
        // Compromised); its stale writes after waking are idempotent.
        let integrity = s.integrity();
        let d = compare::diff(&reference_tree(2), &s.into_tree(), 0.0);
        if integrity == Integrity::Degraded {
            assert!(
                d.is_identical(),
                "degraded map diverged: {} value / {} coverage mismatches",
                d.value_mismatches,
                d.coverage_mismatches
            );
        }
    }

    #[test]
    fn full_ring_is_backpressure_not_a_fault() {
        let plan = FaultPlan {
            fill_ring: Some(0),
            ..Default::default()
        };
        let mut s = faulty_system(1, plan, 5_000);
        assert!(run_scans(&mut s).is_empty());
        assert_eq!(s.integrity(), Integrity::Intact);
        assert!(!s.fault_counters().any());
        let d = compare::diff(&reference_tree(1), &s.into_tree(), 0.0);
        assert!(d.is_identical());
    }

    #[test]
    fn mid_batch_abandonment_is_recorded_not_silent() {
        // Drive a worker thread directly: send a chunk but never the
        // BatchEnd, then request shutdown. The worker must record exactly
        // which batch was cut short and how much of it had been applied.
        let grid = VoxelGrid::new(0.5, 8).unwrap();
        let tree = Arc::new(Mutex::new(OccupancyOcTree::new(
            grid,
            OccupancyParams::default(),
        )));
        let shared = Arc::new(WorkerShared::default());
        let (mut producer, consumer) = spsc::channel::<Item>(16);
        let handle = {
            let tree = Arc::clone(&tree);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                worker_thread(
                    consumer,
                    tree,
                    shared,
                    Duration::from_secs(10),
                    WorkerFaults::default(),
                    None,
                )
            })
        };
        let cells: Vec<EvictedCell> = (0..10)
            .map(|i| EvictedCell {
                key: VoxelKey::new(100 + i as u16, 100, 100),
                log_odds: 0.5,
            })
            .collect();
        producer.push(Item::Chunk(cells)).unwrap();
        while shared.cells_applied.load(Ordering::Acquire) < 10 {
            std::thread::yield_now();
        }
        shared.shutdown.store(true, Ordering::Release);
        handle.join().unwrap();
        assert!(shared.dead.load(Ordering::Acquire));
        assert!(!shared.panicked.load(Ordering::Acquire));
        assert_eq!(shared.batches_done.load(Ordering::Acquire), 0);
        assert_eq!(shared.partial_batches.load(Ordering::Acquire), 1);
        assert_eq!(shared.partial_batch_index.load(Ordering::Acquire), 0);
        assert_eq!(shared.partial_cells_applied.load(Ordering::Acquire), 10);
    }

    #[test]
    fn fault_deltas_reach_telemetry_records() {
        use octocache_telemetry::SharedRecorder;
        let plan = FaultPlan {
            kill: Some(FaultAt {
                worker: 0,
                batch: 1,
            }),
            ..Default::default()
        };
        let mut s = faulty_system(2, plan, 1_000);
        let recorder = SharedRecorder::new();
        s.set_recorder(Box::new(recorder.clone()));
        let _ = run_scans(&mut s);
        s.finish();
        let records = recorder.records();
        let panics: u64 = records.iter().map(|r| r.worker_panics).sum();
        assert_eq!(panics, 1, "panic delta must land on exactly one record");
        assert!(records.iter().any(|r| r.degraded));
        // Records before the fault are not flagged.
        assert!(!records[0].degraded);
    }
}
