//! The concurrent snapshot query engine: lock-free reads during mapping.
//!
//! The paper's pipeline (§4.4) keeps the octree behind a mutex so the
//! mapping thread and the octree-update workers never race. That mutex is
//! also what planners would have to take for every `is_occupied_at` probe —
//! thousands per planning cycle — turning the read path into a contention
//! point exactly when the map is busiest. This module removes readers from
//! the lock order entirely:
//!
//! * Writers publish an immutable [`MapSnapshot`] at every scan boundary
//!   through a [`SnapshotPublisher`] owned by the scan-lifecycle engine
//!   ([`Engine`](crate::Engine), shared by every [`MappingSystem`]
//!   backend); the snapshot tree itself comes from the backend's
//!   [`ScanExecutor::snapshot_tree`](crate::ScanExecutor::snapshot_tree).
//!   Publication is an epoch-numbered pointer swap; the octree inside a
//!   snapshot is never mutated after publication.
//! * Readers hold a [`QueryHandle`] (cheaply cloneable, `Send + Sync`) and
//!   answer every query — point lookups, ray casts, level-limited searches,
//!   bounding-box scans and Morton-batched lookups — against whichever
//!   snapshot was current when they asked, without touching the octree
//!   mutex or blocking the writer.
//!
//! Snapshots are *scan-boundary consistent*: a published tree contains every
//! voxel of scans `0..=k` and nothing of scan `k+1`, so concurrent readers
//! can never observe a torn, half-applied scan (the property the stress
//! tests pin via per-scan [`MapSnapshot::checksum`] tables).
//!
//! The [`OccupancyView`] trait at the bottom lets the planners run
//! unchanged against either a live backend (via [`LiveMap`]) or a snapshot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use octocache_geom::{Aabb, GeomError, Point3, VoxelGrid, VoxelKey};
use octocache_octomap::query as tree_query;
/// Batch traversal counters and ray-cast results are defined next to the
/// octree; re-exported here so snapshot consumers need only this module.
pub use octocache_octomap::query::{BatchStats, RayCastResult};
use octocache_octomap::{LeafEntry, OccupancyOcTree, OccupancyParams};
use parking_lot::Mutex;

use crate::pipeline::MappingSystem;

/// An immutable, epoch-numbered view of the map at a scan boundary.
///
/// The tree inside is a private deep copy (plus, for cache-backed writers,
/// the cache contents overlaid), so every query here is answered without
/// any synchronisation at all — `OccupancyOcTree` reads are `&self` and the
/// tree is `Sync`. Values are bit-identical to what the owning backend's
/// locked query path would return at the same scan boundary (verified by
/// `tests/query_consistency.rs` across every backend × layout × worker
/// count).
#[derive(Debug)]
pub struct MapSnapshot {
    tree: OccupancyOcTree,
    epoch: u64,
    scans: u64,
    published_at: Instant,
    publish_latency: Duration,
}

impl MapSnapshot {
    /// Builds a snapshot directly from a tree (epoch 0, for standalone use;
    /// backends go through [`SnapshotPublisher`] instead).
    pub fn from_tree(tree: OccupancyOcTree) -> Self {
        MapSnapshot {
            tree,
            epoch: 0,
            scans: 0,
            published_at: Instant::now(),
            publish_latency: Duration::ZERO,
        }
    }

    /// Monotonic publication number; bumped by every
    /// [`SnapshotPublisher::publish_with`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Scans the writer had applied when this snapshot was published.
    pub fn scans(&self) -> u64 {
        self.scans
    }

    /// How long ago this snapshot was published — the staleness a reader
    /// accepts in exchange for never blocking the writer.
    pub fn age(&self) -> Duration {
        self.published_at.elapsed()
    }

    /// Wall-clock cost of building and publishing this snapshot.
    pub fn publish_latency(&self) -> Duration {
        self.publish_latency
    }

    /// The snapshot's private octree.
    pub fn tree(&self) -> &OccupancyOcTree {
        &self.tree
    }

    /// The world↔key mapping.
    pub fn grid(&self) -> &VoxelGrid {
        self.tree.grid()
    }

    /// The occupancy thresholds the snapshot decides with.
    pub fn params(&self) -> &OccupancyParams {
        self.tree.params()
    }

    /// Accumulated occupancy log-odds at a voxel; `None` = unknown space.
    pub fn occupancy(&self, key: VoxelKey) -> Option<f32> {
        self.tree.search(key)
    }

    /// Occupancy decision at a voxel.
    pub fn is_occupied(&self, key: VoxelKey) -> Option<bool> {
        self.tree.is_occupied(key)
    }

    /// Occupancy decision at a world point.
    ///
    /// # Errors
    ///
    /// Propagates [`GeomError`] for out-of-map points.
    pub fn is_occupied_at(&self, p: Point3) -> Result<Option<bool>, GeomError> {
        Ok(self.is_occupied(self.tree.grid().key_of(p)?))
    }

    /// Casts a ray (reference OctoMap's `castRay`) against the snapshot.
    ///
    /// # Errors
    ///
    /// Propagates [`GeomError`] for out-of-map origins or degenerate
    /// directions.
    pub fn cast_ray(
        &self,
        origin: Point3,
        direction: Point3,
        max_range: f64,
        ignore_unknown: bool,
    ) -> Result<RayCastResult, GeomError> {
        tree_query::cast_ray(&self.tree, origin, direction, max_range, ignore_unknown)
    }

    /// Occupancy at a coarser resolution: the value of `key`'s ancestor at
    /// `level` levels above the finest resolution.
    pub fn search_at_level(&self, key: VoxelKey, level: u8) -> Option<f32> {
        tree_query::search_at_level(&self.tree, key, level)
    }

    /// True when any voxel inside `bounds` is occupied.
    ///
    /// # Errors
    ///
    /// Propagates [`GeomError`] when the box lies outside the map.
    pub fn any_occupied_in_box(&self, bounds: &Aabb) -> Result<bool, GeomError> {
        tree_query::any_occupied_in_box(&self.tree, bounds)
    }

    /// Every known leaf intersecting `bounds`.
    ///
    /// # Errors
    ///
    /// Propagates [`GeomError`] when the box lies outside the map.
    pub fn leaves_in_box(&self, bounds: &Aabb) -> Result<Vec<LeafEntry>, GeomError> {
        tree_query::leaves_in_box(&self.tree, bounds)
    }

    /// Answers a batch of point lookups in one Morton-ordered sweep,
    /// reusing root-to-leaf path prefixes between adjacent queries
    /// ([`octocache_octomap::query::batch_search`]). Results are in input
    /// order and bit-identical to one-at-a-time [`MapSnapshot::occupancy`]
    /// calls.
    pub fn batch_occupancy(&self, keys: &[VoxelKey]) -> (Vec<Option<f32>>, BatchStats) {
        tree_query::batch_search(&self.tree, keys)
    }

    /// FNV-1a digest over every leaf (key, level, log-odds bits), delegating
    /// to [`OccupancyOcTree::leaf_checksum`].
    ///
    /// Two snapshots of the same logical map hash identically regardless of
    /// storage layout; the concurrent stress tests use this to prove a
    /// published snapshot is exactly one scan boundary, never a torn blend
    /// of two, and crash recovery (`crate::durable`) uses it as the
    /// bit-match oracle against the v2 map footer.
    pub fn checksum(&self) -> u64 {
        self.tree.leaf_checksum()
    }
}

/// What one [`SnapshotPublisher::publish_with`] call did.
#[derive(Debug, Clone, Copy)]
pub struct PublishStats {
    /// Epoch of the snapshot just published.
    pub epoch: u64,
    /// Time to build the snapshot tree and swap it in.
    pub latency: Duration,
    /// Age of the snapshot this one replaced (how stale readers had been).
    pub replaced_age: Duration,
}

/// Shared state between a publisher and its handles: the current snapshot
/// behind a pointer-swap mutex, plus batch-query counters the handles feed
/// and the writer drains into telemetry.
#[derive(Debug)]
struct SlotInner {
    current: Mutex<Arc<MapSnapshot>>,
    batch_queries: AtomicU64,
    batch_nodes_visited: AtomicU64,
    batch_nodes_reused: AtomicU64,
}

/// The writer's side of the snapshot slot: owned by a mapping backend,
/// republished at every scan boundary.
#[derive(Debug)]
pub struct SnapshotPublisher {
    inner: Arc<SlotInner>,
    epoch: u64,
}

impl SnapshotPublisher {
    /// Creates a slot holding `initial` as the epoch-0 snapshot.
    pub fn new(initial: OccupancyOcTree, scans: u64) -> Self {
        let snap = MapSnapshot {
            tree: initial,
            epoch: 0,
            scans,
            published_at: Instant::now(),
            publish_latency: Duration::ZERO,
        };
        SnapshotPublisher {
            inner: Arc::new(SlotInner {
                current: Mutex::new(Arc::new(snap)),
                batch_queries: AtomicU64::new(0),
                batch_nodes_visited: AtomicU64::new(0),
                batch_nodes_reused: AtomicU64::new(0),
            }),
            epoch: 0,
        }
    }

    /// A reader handle onto this slot. Handles stay valid after the
    /// publisher is dropped (they keep serving the last snapshot).
    pub fn handle(&self) -> QueryHandle {
        QueryHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Epoch of the most recently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Builds a tree with `build`, wraps it as the next-epoch snapshot and
    /// swaps it in. Readers holding the previous `Arc` finish their queries
    /// against it undisturbed; new [`QueryHandle::snapshot`] calls see the
    /// new one. The reported latency covers the build (the deep copy / shard
    /// merge dominates) plus the O(1) swap.
    pub fn publish_with(
        &mut self,
        scans: u64,
        build: impl FnOnce() -> OccupancyOcTree,
    ) -> PublishStats {
        let t0 = Instant::now();
        let tree = build();
        let latency = t0.elapsed();
        self.epoch += 1;
        let snap = Arc::new(MapSnapshot {
            tree,
            epoch: self.epoch,
            scans,
            published_at: Instant::now(),
            publish_latency: latency,
        });
        let old = {
            let mut cur = self.inner.current.lock();
            std::mem::replace(&mut *cur, snap)
        };
        PublishStats {
            epoch: self.epoch,
            latency: t0.elapsed(),
            replaced_age: old.age(),
        }
    }

    /// Drains the batch-query counters accumulated by every handle since
    /// the last drain (for per-scan telemetry attribution).
    pub fn take_batch_stats(&self) -> BatchStats {
        BatchStats {
            queries: self.inner.batch_queries.swap(0, Ordering::Relaxed),
            nodes_visited: self.inner.batch_nodes_visited.swap(0, Ordering::Relaxed),
            nodes_reused: self.inner.batch_nodes_reused.swap(0, Ordering::Relaxed),
        }
    }
}

/// A cloneable, thread-safe reader onto a backend's published snapshots.
///
/// Every query grabs the current [`MapSnapshot`] (a brief pointer-swap lock,
/// never contended with octree work) and answers against it; none of them
/// ever takes the octree mutex, so any number of readers run concurrently
/// with `insert_scan`.
#[derive(Debug, Clone)]
pub struct QueryHandle {
    inner: Arc<SlotInner>,
}

impl QueryHandle {
    /// The currently published snapshot. O(1): an `Arc` clone under a
    /// momentary lock. Hold the `Arc` to answer many queries against one
    /// consistent epoch.
    pub fn snapshot(&self) -> Arc<MapSnapshot> {
        Arc::clone(&self.inner.current.lock())
    }

    /// Epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }

    /// Lock-free occupancy lookup against the current snapshot.
    pub fn occupancy(&self, key: VoxelKey) -> Option<f32> {
        self.snapshot().occupancy(key)
    }

    /// Lock-free occupancy decision against the current snapshot.
    pub fn is_occupied(&self, key: VoxelKey) -> Option<bool> {
        self.snapshot().is_occupied(key)
    }

    /// Lock-free occupancy decision at a world point.
    ///
    /// # Errors
    ///
    /// Propagates [`GeomError`] for out-of-map points.
    pub fn is_occupied_at(&self, p: Point3) -> Result<Option<bool>, GeomError> {
        self.snapshot().is_occupied_at(p)
    }

    /// Lock-free ray cast against the current snapshot.
    ///
    /// # Errors
    ///
    /// Propagates [`GeomError`] for out-of-map origins or degenerate
    /// directions.
    pub fn cast_ray(
        &self,
        origin: Point3,
        direction: Point3,
        max_range: f64,
        ignore_unknown: bool,
    ) -> Result<RayCastResult, GeomError> {
        self.snapshot()
            .cast_ray(origin, direction, max_range, ignore_unknown)
    }

    /// Lock-free level-limited search against the current snapshot.
    pub fn search_at_level(&self, key: VoxelKey, level: u8) -> Option<f32> {
        self.snapshot().search_at_level(key, level)
    }

    /// Morton-batched lookups against one consistent snapshot, with the
    /// traversal counters also accumulated into the slot so the writer can
    /// report prefix reuse in telemetry.
    pub fn batch_occupancy(&self, keys: &[VoxelKey]) -> (Vec<Option<f32>>, BatchStats) {
        let snap = self.snapshot();
        let (values, stats) = snap.batch_occupancy(keys);
        self.inner
            .batch_queries
            .fetch_add(stats.queries, Ordering::Relaxed);
        self.inner
            .batch_nodes_visited
            .fetch_add(stats.nodes_visited, Ordering::Relaxed);
        self.inner
            .batch_nodes_reused
            .fetch_add(stats.nodes_reused, Ordering::Relaxed);
        (values, stats)
    }

    /// The batch-query counters accumulated (and not yet drained by the
    /// publisher) across every clone of this handle.
    pub fn batch_stats(&self) -> BatchStats {
        BatchStats {
            queries: self.inner.batch_queries.load(Ordering::Relaxed),
            nodes_visited: self.inner.batch_nodes_visited.load(Ordering::Relaxed),
            nodes_reused: self.inner.batch_nodes_reused.load(Ordering::Relaxed),
        }
    }
}

/// The minimal occupancy interface the planners consume, satisfied both by
/// immutable snapshots and (through [`LiveMap`]) by live mutable backends.
///
/// `&mut self` mirrors [`MappingSystem`]'s query methods — cache-backed
/// backends update hit statistics on reads — and is simply unused by the
/// snapshot implementations.
pub trait OccupancyView {
    /// Occupancy decision at a world point; `None` = unknown space.
    ///
    /// # Errors
    ///
    /// Propagates [`GeomError`] for out-of-map points.
    fn is_occupied_at(&mut self, p: Point3) -> Result<Option<bool>, GeomError>;
}

impl OccupancyView for MapSnapshot {
    fn is_occupied_at(&mut self, p: Point3) -> Result<Option<bool>, GeomError> {
        MapSnapshot::is_occupied_at(self, p)
    }
}

impl OccupancyView for Arc<MapSnapshot> {
    fn is_occupied_at(&mut self, p: Point3) -> Result<Option<bool>, GeomError> {
        MapSnapshot::is_occupied_at(self, p)
    }
}

impl OccupancyView for QueryHandle {
    fn is_occupied_at(&mut self, p: Point3) -> Result<Option<bool>, GeomError> {
        QueryHandle::is_occupied_at(self, p)
    }
}

/// Adapts a live [`MappingSystem`] to [`OccupancyView`] by borrowing it
/// mutably for the planning cycle. (A blanket `impl OccupancyView for M`
/// would overlap with the snapshot impls under coherence rules, hence the
/// explicit wrapper.)
pub struct LiveMap<'a, M: MappingSystem + ?Sized>(pub &'a mut M);

impl<M: MappingSystem + ?Sized> OccupancyView for LiveMap<'_, M> {
    fn is_occupied_at(&mut self, p: Point3) -> Result<Option<bool>, GeomError> {
        self.0.is_occupied_at(p)
    }
}

impl<M: MappingSystem + ?Sized> std::fmt::Debug for LiveMap<'_, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("LiveMap").field(&self.0.name()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octocache_geom::VoxelGrid;

    fn grid() -> VoxelGrid {
        VoxelGrid::new(0.5, 8).unwrap()
    }

    fn occupied_tree() -> OccupancyOcTree {
        let mut t = OccupancyOcTree::new(grid(), OccupancyParams::default());
        for i in 0..10u16 {
            for _ in 0..3 {
                t.update_node(VoxelKey::new(200, 100 + i, 128), true);
            }
        }
        t
    }

    #[test]
    fn publish_bumps_epoch_and_handles_see_it() {
        let mut publisher = SnapshotPublisher::new(occupied_tree(), 0);
        let handle = publisher.handle();
        assert_eq!(handle.epoch(), 0);
        let s0 = handle.snapshot();
        let stats = publisher.publish_with(1, occupied_tree);
        assert_eq!(stats.epoch, 1);
        assert!(stats.latency > Duration::ZERO);
        assert_eq!(handle.epoch(), 1);
        // The old snapshot is still fully queryable by whoever holds it.
        assert_eq!(s0.epoch(), 0);
        assert_eq!(
            s0.occupancy(VoxelKey::new(200, 100, 128)),
            handle.occupancy(VoxelKey::new(200, 100, 128))
        );
    }

    #[test]
    fn handle_outlives_publisher() {
        let publisher = SnapshotPublisher::new(occupied_tree(), 3);
        let handle = publisher.handle();
        drop(publisher);
        assert_eq!(handle.snapshot().scans(), 3);
        assert_eq!(handle.is_occupied(VoxelKey::new(200, 100, 128)), Some(true));
    }

    #[test]
    fn snapshot_queries_match_tree_queries() {
        let tree = occupied_tree();
        let snap = MapSnapshot::from_tree(tree.deep_clone());
        for x in (195..205u16).step_by(1) {
            let key = VoxelKey::new(x, 100, 128);
            assert_eq!(
                snap.occupancy(key).map(f32::to_bits),
                tree.search(key).map(f32::to_bits)
            );
        }
        let occupied = grid().center_of(VoxelKey::new(200, 105, 128));
        assert_eq!(snap.is_occupied_at(occupied).unwrap(), Some(true));
    }

    #[test]
    fn batch_counters_accumulate_and_drain() {
        let publisher = SnapshotPublisher::new(occupied_tree(), 0);
        let handle = publisher.handle();
        let keys: Vec<VoxelKey> = (0..8u16)
            .map(|i| VoxelKey::new(200, 100 + i, 128))
            .collect();
        let (values, _) = handle.batch_occupancy(&keys);
        assert_eq!(values.len(), keys.len());
        assert!(values[0].is_some());
        let acc = handle.batch_stats();
        assert_eq!(acc.queries, keys.len() as u64);
        assert!(acc.nodes_reused > 0, "adjacent keys must share prefixes");
        let drained = publisher.take_batch_stats();
        assert_eq!(drained.queries, acc.queries);
        assert_eq!(handle.batch_stats().queries, 0, "drain resets");
    }

    #[test]
    fn checksum_keyed_by_content() {
        let a = MapSnapshot::from_tree(occupied_tree());
        let b = MapSnapshot::from_tree(occupied_tree());
        assert_eq!(a.checksum(), b.checksum());
        let mut t = occupied_tree();
        t.update_node(VoxelKey::new(10, 10, 10), true);
        assert_ne!(a.checksum(), MapSnapshot::from_tree(t).checksum());
    }

    #[test]
    fn occupancy_view_is_object_safe_over_snapshots_and_live_maps() {
        let p = grid().center_of(VoxelKey::new(200, 100, 128));
        let mut snap = MapSnapshot::from_tree(occupied_tree());
        let view: &mut dyn OccupancyView = &mut snap;
        assert_eq!(view.is_occupied_at(p).unwrap(), Some(true));
        let mut sys = crate::pipeline::OctoMapSystem::new(grid(), OccupancyParams::default());
        let mut live = LiveMap(&mut sys);
        let view: &mut dyn OccupancyView = &mut live;
        assert_eq!(view.is_occupied_at(p).unwrap(), None);
    }
}
