//! Typed pipeline failures, map-integrity reporting, and deterministic
//! fault injection for the parallel pipeline.
//!
//! The parallel OctoCache moves octree updates onto worker threads, which
//! introduces failure modes the serial backends cannot have: a worker can
//! panic mid-batch, wedge while holding its shard mutex, or never spawn at
//! all. This module gives those failures names ([`PipelineError`]), gives
//! the map a verdict after they happen ([`Integrity`]), counts them
//! ([`FaultCounters`]), and — under `cfg(any(test, feature =
//! "fault-injection"))` — lets tests schedule them deterministically
//! ([`FaultPlan`]).
//!
//! The recovery contract (see `DESIGN.md`, "Failure model & degraded
//! modes") rests on one property of the eviction stream: evicted cells
//! carry the voxel's *absolute* accumulated log-odds and are applied with
//! an overwriting store, so re-applying a batch — even one a dead worker
//! half-applied — is idempotent and restores exactly the state a healthy
//! worker would have produced.

use std::fmt;
use std::time::Duration;

use octocache_geom::GeomError;

/// A typed failure from a mapping pipeline.
///
/// Returned by [`crate::MappingSystem::insert_scan`]; the serial backends
/// only ever produce the [`PipelineError::Geom`] variant, the parallel
/// pipeline produces all of them. Every variant except `Geom` implies the
/// pipeline has taken a worker out of rotation and the map's
/// [`Integrity`] is no longer [`Integrity::Intact`].
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// The scan itself was invalid (non-finite or out-of-grid origin).
    /// The scan was not applied; the map is unchanged by it.
    Geom(GeomError),
    /// An octree-update worker panicked while processing `batch`. The
    /// producer re-applied the retained batch inline, so the map stays
    /// consistent; the worker's octants are served inline from now on.
    WorkerPanicked {
        /// Index of the dead worker.
        worker: usize,
        /// 0-based batch index the worker died on.
        batch: u64,
    },
    /// A worker thread could not be spawned; its octant share is applied
    /// inline on the producer thread instead.
    WorkerSpawn {
        /// Index of the worker that failed to spawn.
        worker: usize,
        /// The OS error message.
        reason: String,
    },
    /// A worker stopped making progress and the bounded backoff expired
    /// after `waited`. The worker is taken out of rotation but cannot be
    /// joined (it may be wedged); see [`Integrity::Compromised`].
    QueueStalled {
        /// Index of the stalled worker.
        worker: usize,
        /// How long the producer waited before giving up.
        waited: Duration,
    },
    /// A batch was abandoned midway and its tail could not be re-applied:
    /// `cells_dropped` evicted cells may be missing from the map.
    PartialScan {
        /// Index of the worker that abandoned the batch.
        worker: usize,
        /// 0-based batch index that was cut short.
        batch: u64,
        /// Evicted cells of the batch that were not confirmed applied.
        cells_dropped: u64,
    },
    /// The durability layer failed to journal or checkpoint the scan
    /// ([`crate::durable::DurableMap`]). The scan was **not** applied to the
    /// wrapped backend: the write-ahead contract ("journaled before
    /// applied") holds, so the durable state never lags the in-memory map.
    Durable(crate::durable::DurableError),
    /// The memory governor's top rung: resident bytes exceeded the
    /// configured [`MemoryBudget`](crate::CacheConfig::mem_budget) even
    /// after forced eviction and pruning, so the scan was rejected before
    /// it touched the map. The map is unchanged by it; integrity is
    /// unaffected (rejection is back-pressure, not corruption).
    OverBudget {
        /// Resident bytes observed after relief attempts.
        resident_bytes: u64,
        /// The configured budget in bytes.
        budget_bytes: u64,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Geom(e) => write!(f, "invalid scan geometry: {e}"),
            PipelineError::WorkerPanicked { worker, batch } => {
                write!(f, "octree worker {worker} panicked on batch {batch}")
            }
            PipelineError::WorkerSpawn { worker, reason } => {
                write!(f, "octree worker {worker} failed to spawn: {reason}")
            }
            PipelineError::QueueStalled { worker, waited } => write!(
                f,
                "octree worker {worker} stalled (waited {:.1} ms past deadline)",
                waited.as_secs_f64() * 1e3
            ),
            PipelineError::PartialScan {
                worker,
                batch,
                cells_dropped,
            } => write!(
                f,
                "worker {worker} abandoned batch {batch} with {cells_dropped} cells unapplied"
            ),
            PipelineError::Durable(e) => write!(f, "durable storage: {e}"),
            PipelineError::OverBudget {
                resident_bytes,
                budget_bytes,
            } => write!(
                f,
                "scan rejected: resident {:.1} MiB over the {:.1} MiB memory budget",
                *resident_bytes as f64 / (1024.0 * 1024.0),
                *budget_bytes as f64 / (1024.0 * 1024.0)
            ),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Geom(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GeomError> for PipelineError {
    fn from(e: GeomError) -> Self {
        PipelineError::Geom(e)
    }
}

/// The map-consistency verdict a mapping backend reports after faults.
///
/// Ordered by severity: [`Integrity::escalate`] only ever moves toward
/// [`Integrity::Compromised`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Integrity {
    /// No fault has occurred; full parallelism, map exact.
    #[default]
    Intact,
    /// Parallelism was lost (a worker died, stalled, or never spawned)
    /// but every evicted cell was confirmed applied or re-applied: the
    /// map is still voxel-for-voxel what the serial backend would hold.
    Degraded,
    /// A worker may still apply stale values after newer inline writes,
    /// or cells could not be re-applied: the map may diverge from the
    /// serial reference.
    Compromised,
}

impl Integrity {
    /// True for any state other than [`Integrity::Intact`].
    #[inline]
    pub fn is_degraded(&self) -> bool {
        !matches!(self, Integrity::Intact)
    }

    /// Raises the verdict to `to` if it is more severe than the current
    /// state (never lowers it).
    #[inline]
    pub fn escalate(&mut self, to: Integrity) {
        if to > *self {
            *self = to;
        }
    }

    /// The one sanctioned downward transition: [`Integrity::Degraded`] →
    /// [`Integrity::Intact`], taken by the supervisor after every dead
    /// worker has been respawned and its retained share re-applied.
    /// Returns whether the heal happened. [`Integrity::Compromised`]
    /// never heals — once cells may have been lost or overwritten stale,
    /// no respawn can prove the map exact again.
    #[inline]
    pub fn heal(&mut self) -> bool {
        if *self == Integrity::Degraded {
            *self = Integrity::Intact;
            true
        } else {
            false
        }
    }
}

impl fmt::Display for Integrity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Integrity::Intact => write!(f, "intact"),
            Integrity::Degraded => write!(f, "degraded"),
            Integrity::Compromised => write!(f, "compromised"),
        }
    }
}

/// Cumulative fault and degraded-mode counters of one pipeline instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounters {
    /// Worker threads that died by panic.
    pub worker_panics: u64,
    /// Worker threads that failed to spawn.
    pub spawn_failures: u64,
    /// Bounded waits that expired ([`PipelineError::QueueStalled`]).
    pub stall_timeouts: u64,
    /// Batches a worker abandoned midway.
    pub partial_batches: u64,
    /// Batch shares applied inline because their worker was out of
    /// rotation.
    pub batches_rerouted: u64,
    /// Evicted cells re-applied (or applied inline) by the producer.
    pub cells_reapplied: u64,
    /// Worker threads respawned by the supervisor
    /// ([`RestartPolicy`](crate::supervisor::RestartPolicy)).
    pub restarts: u64,
    /// Integrity transitions back to [`Integrity::Intact`] after every
    /// dead worker was respawned.
    pub heals: u64,
}

impl FaultCounters {
    /// Per-field difference `self - earlier` (saturating), for per-scan
    /// telemetry deltas.
    pub fn since(&self, earlier: &FaultCounters) -> FaultCounters {
        FaultCounters {
            worker_panics: self.worker_panics.saturating_sub(earlier.worker_panics),
            spawn_failures: self.spawn_failures.saturating_sub(earlier.spawn_failures),
            stall_timeouts: self.stall_timeouts.saturating_sub(earlier.stall_timeouts),
            partial_batches: self.partial_batches.saturating_sub(earlier.partial_batches),
            batches_rerouted: self
                .batches_rerouted
                .saturating_sub(earlier.batches_rerouted),
            cells_reapplied: self.cells_reapplied.saturating_sub(earlier.cells_reapplied),
            restarts: self.restarts.saturating_sub(earlier.restarts),
            heals: self.heals.saturating_sub(earlier.heals),
        }
    }

    /// True when any counter is non-zero.
    pub fn any(&self) -> bool {
        *self != FaultCounters::default()
    }
}

/// One recorded change of a map's [`Integrity`] verdict.
///
/// The history makes heals *visible*: a run that degraded on scan 3 and
/// healed on scan 4 ends at [`Integrity::Intact`], indistinguishable from
/// a clean run by the sticky verdict alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegrityTransition {
    /// 0-based scan sequence number during which the transition happened.
    pub scan: u64,
    /// Verdict before.
    pub from: Integrity,
    /// Verdict after.
    pub to: Integrity,
}

impl fmt::Display for IntegrityTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scan {}: {} → {}", self.scan, self.from, self.to)
    }
}

/// An [`Integrity`] verdict plus the full history of its transitions.
///
/// The parallel pipeline holds one of these instead of a bare verdict;
/// [`IntegrityState::escalate`] and [`IntegrityState::heal`] append to the
/// history, stamped with the scan set by [`IntegrityState::set_scan`] at
/// each scan boundary.
#[derive(Debug, Clone, Default)]
pub struct IntegrityState {
    current: Integrity,
    history: Vec<IntegrityTransition>,
    scan: u64,
}

impl IntegrityState {
    /// The current verdict.
    #[inline]
    pub fn current(&self) -> Integrity {
        self.current
    }

    /// True for any verdict other than [`Integrity::Intact`].
    #[inline]
    pub fn is_degraded(&self) -> bool {
        self.current.is_degraded()
    }

    /// Every transition taken so far, oldest first.
    pub fn history(&self) -> &[IntegrityTransition] {
        &self.history
    }

    /// Stamps the scan sequence number subsequent transitions are
    /// attributed to.
    #[inline]
    pub fn set_scan(&mut self, scan: u64) {
        self.scan = scan;
    }

    /// [`Integrity::escalate`], recording the transition if one happened.
    pub fn escalate(&mut self, to: Integrity) {
        let from = self.current;
        self.current.escalate(to);
        if self.current != from {
            self.history.push(IntegrityTransition {
                scan: self.scan,
                from,
                to: self.current,
            });
        }
    }

    /// [`Integrity::heal`], recording the transition if one happened.
    pub fn heal(&mut self) -> bool {
        let from = self.current;
        if self.current.heal() {
            self.history.push(IntegrityTransition {
                scan: self.scan,
                from,
                to: self.current,
            });
            true
        } else {
            false
        }
    }
}

/// Kill coordinates: which worker dies, and on which batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultAt {
    /// Worker index (taken modulo the actual worker count).
    pub worker: usize,
    /// 0-based batch index at which the fault fires.
    pub batch: u64,
}

/// Stall coordinates: which worker sleeps, when, and for how long.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallAt {
    /// Worker index (taken modulo the actual worker count).
    pub worker: usize,
    /// 0-based batch index at which the stall fires.
    pub batch: u64,
    /// Stall duration in microseconds.
    pub micros: u64,
}

/// Periodic-kill coordinates: a worker that panics every `every` batches
/// of its (possibly respawned) thread's life — the chaos-soak workload for
/// exercising [`RestartPolicy`](crate::supervisor::RestartPolicy) budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillEvery {
    /// Worker index (taken modulo the actual worker count).
    pub worker: usize,
    /// Panic once every `every` batches (the fault fires when
    /// `(batch + 1) % every == 0`, so a freshly respawned thread — whose
    /// local batch index restarts at 0 — survives `every - 1` batches
    /// before dying again).
    pub every: u64,
}

/// A deterministic fault-injection schedule for one pipeline instance.
///
/// Stored on [`crate::CacheConfig`] (via
/// [`crate::CacheConfigBuilder::fault_plan`]); the hooks that act on it
/// are compiled only under `cfg(any(test, feature = "fault-injection"))`
/// and are zero-cost no-ops otherwise. Worker indices are taken modulo the
/// actual worker count, so one plan is meaningful at every N ∈ {1,2,4,8}.
///
/// The CLI derives a plan from the `OCTO_FAULT` environment variable (or
/// `--fault`); embedders can call [`FaultPlan::from_env`] themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Panic worker `kill.worker` at the start of batch `kill.batch`.
    pub kill: Option<FaultAt>,
    /// Sleep worker `stall.worker` for `stall.micros` µs at the start of
    /// batch `stall.batch`.
    pub stall: Option<StallAt>,
    /// Fail the spawn of this worker index (modulo worker count).
    pub fail_spawn: Option<usize>,
    /// Shrink this worker's ring to near-zero capacity so back-pressure
    /// fires on every chunk.
    pub fill_ring: Option<usize>,
    /// Panic worker `kill_every.worker` repeatedly, every
    /// `kill_every.every` batches — across respawns, so a restart budget
    /// is eventually exhausted.
    pub kill_every: Option<KillEvery>,
}

/// xorshift64* step — a tiny deterministic generator so plans need no RNG
/// dependency.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

impl FaultPlan {
    /// Derives a single-fault plan deterministically from `seed`: the
    /// fault kind, target worker, batch index and stall length are all
    /// pure functions of the seed.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut s = seed ^ 0x9E37_79B9_7F4A_7C15;
        if s == 0 {
            s = 1;
        }
        let kind = xorshift(&mut s) % 4;
        let worker = (xorshift(&mut s) % 8) as usize;
        let batch = xorshift(&mut s) % 6;
        let micros = 100 + xorshift(&mut s) % 5_000;
        let mut plan = FaultPlan::default();
        match kind {
            0 => {
                plan.kill = Some(FaultAt { worker, batch });
            }
            1 => {
                plan.stall = Some(StallAt {
                    worker,
                    batch,
                    micros,
                });
            }
            2 => plan.fail_spawn = Some(worker),
            _ => plan.fill_ring = Some(worker),
        }
        plan
    }

    /// Parses a fault spec string:
    ///
    /// * `kill:<worker>@<batch>` — panic that worker at that batch,
    /// * `stall:<worker>@<batch>:<micros>` — sleep that long instead,
    /// * `spawn:<worker>` — fail that worker's thread spawn,
    /// * `fill:<worker>` — shrink that worker's ring to force constant
    ///   back-pressure,
    /// * `killevery:<worker>@<n>` — panic that worker every `n` batches,
    ///   across respawns,
    /// * `seed:<n>` — same as [`FaultPlan::from_seed`].
    ///
    /// Returns `None` for anything malformed (injection is best-effort
    /// tooling; a bad spec must never panic a host process).
    pub fn from_spec(spec: &str) -> Option<FaultPlan> {
        let (kind, rest) = spec.split_once(':')?;
        let mut plan = FaultPlan::default();
        match kind {
            "kill" => {
                let (w, b) = rest.split_once('@')?;
                plan.kill = Some(FaultAt {
                    worker: w.parse().ok()?,
                    batch: b.parse().ok()?,
                });
            }
            "stall" => {
                let (w, rest) = rest.split_once('@')?;
                let (b, us) = rest.split_once(':')?;
                plan.stall = Some(StallAt {
                    worker: w.parse().ok()?,
                    batch: b.parse().ok()?,
                    micros: us.parse().ok()?,
                });
            }
            "spawn" => plan.fail_spawn = Some(rest.parse().ok()?),
            "fill" => plan.fill_ring = Some(rest.parse().ok()?),
            "killevery" => {
                let (w, n) = rest.split_once('@')?;
                let every: u64 = n.parse().ok()?;
                if every == 0 {
                    return None;
                }
                plan.kill_every = Some(KillEvery {
                    worker: w.parse().ok()?,
                    every,
                });
            }
            "seed" => return Some(FaultPlan::from_seed(rest.parse().ok()?)),
            _ => return None,
        }
        Some(plan)
    }

    /// Reads a plan from the environment: `OCTO_FAULT` (a
    /// [`FaultPlan::from_spec`] string) first, then `OCTO_FAULT_SEED` (a
    /// [`FaultPlan::from_seed`] seed). `None` when neither is set or the
    /// value is malformed.
    pub fn from_env() -> Option<FaultPlan> {
        if let Ok(spec) = std::env::var("OCTO_FAULT") {
            return FaultPlan::from_spec(&spec);
        }
        if let Ok(seed) = std::env::var("OCTO_FAULT_SEED") {
            return Some(FaultPlan::from_seed(seed.parse().ok()?));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let errors = [
            PipelineError::Geom(GeomError::NotFinite),
            PipelineError::WorkerPanicked {
                worker: 2,
                batch: 5,
            },
            PipelineError::WorkerSpawn {
                worker: 0,
                reason: "out of threads".into(),
            },
            PipelineError::QueueStalled {
                worker: 1,
                waited: Duration::from_millis(12),
            },
            PipelineError::PartialScan {
                worker: 3,
                batch: 7,
                cells_dropped: 41,
            },
            PipelineError::OverBudget {
                resident_bytes: 64 << 20,
                budget_bytes: 32 << 20,
            },
        ];
        for e in &errors {
            assert!(!e.to_string().is_empty());
        }
        // Geom errors keep their source chain for `?`-style reporting.
        use std::error::Error as _;
        assert!(errors[0].source().is_some());
        assert!(errors[1].source().is_none());
    }

    #[test]
    fn geom_errors_convert() {
        fn takes_pipeline() -> Result<(), PipelineError> {
            Err(GeomError::NotFinite)?
        }
        assert_eq!(
            takes_pipeline(),
            Err(PipelineError::Geom(GeomError::NotFinite))
        );
    }

    #[test]
    fn integrity_escalates_monotonically() {
        let mut i = Integrity::Intact;
        assert!(!i.is_degraded());
        i.escalate(Integrity::Degraded);
        assert_eq!(i, Integrity::Degraded);
        assert!(i.is_degraded());
        i.escalate(Integrity::Intact); // never lowers
        assert_eq!(i, Integrity::Degraded);
        i.escalate(Integrity::Compromised);
        i.escalate(Integrity::Degraded);
        assert_eq!(i, Integrity::Compromised);
        assert_eq!(i.to_string(), "compromised");
    }

    #[test]
    fn counters_since_and_any() {
        let a = FaultCounters {
            worker_panics: 2,
            batches_rerouted: 10,
            ..Default::default()
        };
        let b = FaultCounters {
            worker_panics: 3,
            batches_rerouted: 14,
            cells_reapplied: 5,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.worker_panics, 1);
        assert_eq!(d.batches_rerouted, 4);
        assert_eq!(d.cells_reapplied, 5);
        assert!(d.any());
        assert!(!FaultCounters::default().any());
    }

    #[test]
    fn seeded_plans_are_deterministic_and_single_fault() {
        for seed in 0..64u64 {
            let a = FaultPlan::from_seed(seed);
            let b = FaultPlan::from_seed(seed);
            assert_eq!(a, b, "seed {seed}");
            let faults = [
                a.kill.is_some(),
                a.stall.is_some(),
                a.fail_spawn.is_some(),
                a.fill_ring.is_some(),
            ];
            assert_eq!(
                faults.iter().filter(|&&f| f).count(),
                1,
                "seed {seed} must plan exactly one fault: {a:?}"
            );
        }
        // Different seeds reach different plans (not a constant function).
        let distinct: std::collections::HashSet<String> = (0..64u64)
            .map(|s| format!("{:?}", FaultPlan::from_seed(s)))
            .collect();
        assert!(distinct.len() > 4, "only {} distinct plans", distinct.len());
    }

    #[test]
    fn spec_parsing_round_trips_and_rejects_garbage() {
        assert_eq!(
            FaultPlan::from_spec("kill:2@5"),
            Some(FaultPlan {
                kill: Some(FaultAt {
                    worker: 2,
                    batch: 5
                }),
                ..Default::default()
            })
        );
        assert_eq!(
            FaultPlan::from_spec("stall:1@3:2500"),
            Some(FaultPlan {
                stall: Some(StallAt {
                    worker: 1,
                    batch: 3,
                    micros: 2500
                }),
                ..Default::default()
            })
        );
        assert_eq!(
            FaultPlan::from_spec("spawn:7"),
            Some(FaultPlan {
                fail_spawn: Some(7),
                ..Default::default()
            })
        );
        assert_eq!(
            FaultPlan::from_spec("fill:0"),
            Some(FaultPlan {
                fill_ring: Some(0),
                ..Default::default()
            })
        );
        assert_eq!(
            FaultPlan::from_spec("seed:42"),
            Some(FaultPlan::from_seed(42))
        );
        assert_eq!(
            FaultPlan::from_spec("killevery:1@3"),
            Some(FaultPlan {
                kill_every: Some(KillEvery {
                    worker: 1,
                    every: 3
                }),
                ..Default::default()
            })
        );
        for bad in [
            "",
            "kill",
            "kill:",
            "kill:2",
            "kill:x@y",
            "stall:1@3",
            "explode:1",
            "spawn:abc",
            "killevery:1",
            "killevery:1@0",
            "killevery:x@2",
        ] {
            assert_eq!(FaultPlan::from_spec(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn heal_is_degraded_to_intact_only() {
        let mut i = Integrity::Intact;
        assert!(!i.heal(), "intact has nothing to heal");
        i.escalate(Integrity::Degraded);
        assert!(i.heal());
        assert_eq!(i, Integrity::Intact);
        i.escalate(Integrity::Compromised);
        assert!(!i.heal(), "compromised never heals");
        assert_eq!(i, Integrity::Compromised);
    }

    #[test]
    fn integrity_state_records_transition_history() {
        let mut s = IntegrityState::default();
        assert_eq!(s.current(), Integrity::Intact);
        assert!(s.history().is_empty());
        s.set_scan(3);
        s.escalate(Integrity::Degraded);
        s.escalate(Integrity::Degraded); // no-op: no duplicate entry
        s.set_scan(5);
        assert!(s.heal());
        assert!(!s.heal());
        s.set_scan(7);
        s.escalate(Integrity::Compromised);
        assert!(!s.heal());
        let hist = s.history();
        assert_eq!(hist.len(), 3);
        assert_eq!(
            hist[0],
            IntegrityTransition {
                scan: 3,
                from: Integrity::Intact,
                to: Integrity::Degraded
            }
        );
        assert_eq!(
            hist[1],
            IntegrityTransition {
                scan: 5,
                from: Integrity::Degraded,
                to: Integrity::Intact
            }
        );
        assert_eq!(hist[2].to, Integrity::Compromised);
        assert_eq!(hist[1].to_string(), "scan 5: degraded → intact");
    }

    #[test]
    fn counters_track_restarts_and_heals() {
        let a = FaultCounters {
            restarts: 1,
            heals: 1,
            ..Default::default()
        };
        let b = FaultCounters {
            restarts: 4,
            heals: 2,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.restarts, 3);
        assert_eq!(d.heals, 1);
        assert!(d.any());
    }
}
