//! The "naive software parallelization" baseline of the paper's Table 1.
//!
//! The obvious way to parallelise OctoMap is to shard the octree: partition
//! space by top-level octant, give each shard its own subtree, and update
//! shards on separate threads. The paper dismisses this approach ("deploying
//! multiple CPU cores to parallelize octree does not help due to data
//! imbalance", §4.4): a sensor's scan cone is spatially local, so nearly all
//! of a batch lands in one or two shards and the other threads idle. This
//! module implements the baseline so the claim is measurable —
//! [`ShardedOctoMap::imbalance`] reports exactly the skew the paper blames.
//!
//! The scan lifecycle around the shard updates (telemetry, snapshot
//! republish, record assembly) lives in the shared [`Engine`]; this module
//! contributes the [`ShardedExecutor`].

use std::time::Instant;

use octocache_geom::{Point3, VoxelGrid, VoxelKey};
use octocache_octomap::stats::StatsSnapshot;
use octocache_octomap::{insert, OccupancyOcTree, OccupancyParams, TreeLayout};
use octocache_telemetry::{EventKind, EventLog, EventSink, ScanMetrics};

use crate::engine::{self, Engine, FlushTimes, ScanExecutor, ScanOutput};
use crate::fault::PipelineError;
use crate::pipeline::RayTracer;
use crate::routing::{self, OctantRouter};

/// OctoMap sharded by spatial octant, with per-scan parallel shard
/// updates: the scan-lifecycle [`Engine`] over a [`ShardedExecutor`].
pub type ShardedOctoMap = Engine<ShardedExecutor>;

/// Scan execution for the octant-sharded baseline: serial partition of the
/// traced batch by shard, then one scoped update thread per non-empty
/// shard (each owning its subtree exclusively — no locks).
#[derive(Debug)]
pub struct ShardedExecutor {
    shards: Vec<OccupancyOcTree>,
    /// Key → shard mapping, shared with the parallel pipeline.
    router: OctantRouter,
    grid: VoxelGrid,
    params: OccupancyParams,
    ray_tracer: RayTracer,
    batch: insert::VoxelBatch,
    shard_updates: Vec<u64>,
    /// Summed shard counters at the end of the previous scan.
    last_tree_stats: StatsSnapshot,
    /// Sub-scan event sink when tracing is enabled: shard `s` emits its
    /// update spans on lane `s + 1` (lane 0 is the scan-driving thread).
    event_sink: Option<std::sync::Arc<EventSink>>,
}

impl ShardedOctoMap {
    /// Creates a sharded OctoMap with `num_shards` ∈ {1, 2, 4, 8} subtrees.
    ///
    /// Key-to-shard routing is [`OctantRouter`], the helper shared with the
    /// N-worker [`crate::parallel::ParallelOctoCache`], so the two backends
    /// always partition the key space identically.
    ///
    /// # Panics
    ///
    /// Panics for shard counts other than 1, 2, 4 or 8 (the router's
    /// validity rule — a shard is a bit-mask over the eight root octants).
    pub fn new(grid: VoxelGrid, params: OccupancyParams, num_shards: usize) -> Self {
        Self::with_ray_tracer(grid, params, num_shards, RayTracer::Standard)
    }

    /// As [`ShardedOctoMap::new`] with a chosen ray-tracing front-end.
    pub fn with_ray_tracer(
        grid: VoxelGrid,
        params: OccupancyParams,
        num_shards: usize,
        ray_tracer: RayTracer,
    ) -> Self {
        Self::with_layout(
            grid,
            params,
            num_shards,
            ray_tracer,
            TreeLayout::default_from_env(),
        )
    }

    /// As [`ShardedOctoMap::with_ray_tracer`] with an explicit octree
    /// storage layout for every shard (and the merged tree).
    pub fn with_layout(
        grid: VoxelGrid,
        params: OccupancyParams,
        num_shards: usize,
        ray_tracer: RayTracer,
        layout: TreeLayout,
    ) -> Self {
        let router = OctantRouter::new(num_shards, &grid);
        Engine::from_executor(ShardedExecutor {
            shards: (0..num_shards)
                .map(|_| OccupancyOcTree::with_layout(grid, params, layout))
                .collect(),
            router,
            grid,
            params,
            ray_tracer,
            batch: insert::VoxelBatch::new(),
            shard_updates: vec![0; num_shards],
            last_tree_stats: StatsSnapshot::default(),
            event_sink: None,
        })
    }

    /// Turns on sub-scan event tracing (per-shard batch spans). The sharded
    /// baseline takes no [`crate::config::CacheConfig`], so the switch is a
    /// method rather than a config field.
    pub fn enable_events(&mut self) {
        if self.exec.event_sink.is_none() {
            self.exec.event_sink = Some(EventSink::new());
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.exec.shards.len()
    }

    /// The shard a voxel belongs to: the top octant bits of its key
    /// (delegates to the shared [`OctantRouter`]).
    #[inline]
    pub fn shard_of(&self, key: VoxelKey) -> usize {
        self.exec.router.shard_of(key)
    }

    /// Updates routed to each shard so far.
    pub fn shard_update_counts(&self) -> &[u64] {
        &self.exec.shard_updates
    }

    /// Load imbalance: busiest shard's share of updates divided by the fair
    /// share `1/num_shards`. A value of `num_shards` means one shard did
    /// all the work (total imbalance); `1.0` is perfect balance.
    pub fn imbalance(&self) -> f64 {
        routing::skew(&self.exec.shard_updates)
    }
}

impl ShardedExecutor {
    /// Sums the instrumentation counters of every shard.
    fn summed_tree_stats(&self) -> StatsSnapshot {
        let mut total = StatsSnapshot::default();
        for shard in &self.shards {
            total.merge(&shard.stats().snapshot());
        }
        total
    }
}

impl ScanExecutor for ShardedExecutor {
    fn backend_name(&self) -> String {
        format!(
            "octomap-sharded{}x{}",
            self.ray_tracer.suffix(),
            self.shards.len()
        )
    }

    fn grid(&self) -> &VoxelGrid {
        &self.grid
    }

    fn execute_scan(
        &mut self,
        origin: Point3,
        cloud: &[Point3],
        max_range: f64,
        scan_seq: u64,
        metrics: &mut ScanMetrics,
    ) -> Result<ScanOutput, PipelineError> {
        let t0 = Instant::now();
        let batch = engine::trace_scan(
            self.ray_tracer,
            &self.grid,
            origin,
            cloud,
            max_range,
            &mut self.batch,
        )?;
        // Partition by shard (serial, like a naive implementation would).
        let mut parts: Vec<Vec<insert::VoxelUpdate>> =
            vec![Vec::with_capacity(batch.len() / self.shards.len() + 1); self.shards.len()];
        for u in batch.iter() {
            let s = self.router.shard_of(u.key);
            parts[s].push(*u);
            self.shard_updates[s] += 1;
        }
        let observations = batch.len();
        let ray_tracing = t0.elapsed();

        // Parallel shard update: one scoped thread per non-empty shard,
        // each owning its subtree exclusively (no locks needed — this is
        // the best case for the naive approach).
        let t1 = Instant::now();
        let event_sink = self.event_sink.as_ref();
        std::thread::scope(|scope| {
            for (s, (tree, updates)) in self.shards.iter_mut().zip(&parts).enumerate() {
                if updates.is_empty() {
                    continue;
                }
                let events = event_sink.map(|sink| {
                    let mut buf = sink.buffer(s as u32 + 1);
                    buf.set_scan(scan_seq);
                    buf
                });
                scope.spawn(move || {
                    let mut events = events;
                    if let Some(buf) = &mut events {
                        buf.emit_plain(EventKind::BatchBegin, updates.len() as u64);
                    }
                    for u in updates {
                        tree.update_node(u.key, u.occupied);
                    }
                    if let Some(buf) = &mut events {
                        buf.emit_plain(EventKind::BatchEnd, updates.len() as u64);
                    }
                    // Dropping the buffer drains it into the sink.
                });
            }
        });
        let octree_update = t1.elapsed();

        metrics.times.ray_tracing = ray_tracing;
        metrics.times.octree_update = octree_update;
        metrics.observations = observations as u64;
        let tree_after = self.summed_tree_stats();
        engine::stamp_tree_delta(metrics, &tree_after.since(&self.last_tree_stats));
        self.last_tree_stats = tree_after;
        engine::stamp_tree_shape(
            metrics,
            self.shards.iter().map(|s| s.memory_usage() as u64).sum(),
            self.shards[0].layout().name(),
        );
        // This scan's per-shard routing: the same shape the N-worker
        // parallel backend reports, so trace analysis can compare the two
        // parallelisation strategies' balance directly.
        metrics.shard_batch_sizes = parts.iter().map(|p| p.len() as u64).collect();
        metrics.shard_skew = routing::skew(&metrics.shard_batch_sizes);
        Ok(ScanOutput {
            cache_hits: 0,
            octree_updates: observations,
            deferred: None,
        })
    }

    fn snapshot_tree(&self) -> OccupancyOcTree {
        engine::merge_shards(&self.shards)
    }

    fn occupancy(&mut self, key: VoxelKey) -> Option<f32> {
        self.shards[self.router.shard_of(key)].search(key)
    }

    fn is_occupied(&mut self, key: VoxelKey) -> Option<bool> {
        let params = self.params;
        self.occupancy(key).map(|l| params.is_occupied(l))
    }

    fn flush(&mut self) -> FlushTimes {
        FlushTimes::default()
    }

    fn tree_stats(&self) -> Option<StatsSnapshot> {
        Some(self.summed_tree_stats())
    }

    fn take_events(&mut self) -> Option<EventLog> {
        // Shard buffers are scoped to each scan and drain on drop, so the
        // sink is complete whenever no scan is in flight.
        self.event_sink.as_ref().map(|s| s.take())
    }

    fn take_tree(self) -> OccupancyOcTree {
        // Shards populate disjoint top-level octants (for 8 shards; for
        // fewer, disjoint octant groups, which still never collide because
        // a voxel routes to exactly one shard), so a structural merge
        // reassembles the map.
        engine::merge_shards(&self.shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{MappingSystem, OctoMapSystem};

    fn grid() -> VoxelGrid {
        VoxelGrid::new(0.5, 8).unwrap()
    }

    fn cloud() -> Vec<Point3> {
        (0..40)
            .map(|i| Point3::new(6.0, -2.0 + i as f64 * 0.1, 0.25))
            .collect()
    }

    #[test]
    #[should_panic(expected = "must be 1, 2, 4 or 8")]
    fn rejects_odd_shard_counts() {
        ShardedOctoMap::new(grid(), OccupancyParams::default(), 3);
    }

    #[test]
    fn name_reflects_shards() {
        let s = ShardedOctoMap::new(grid(), OccupancyParams::default(), 4);
        assert_eq!(s.name(), "octomap-sharded x4".replace(' ', ""));
    }

    #[test]
    fn queries_agree_with_plain_octomap() {
        let mut sharded = ShardedOctoMap::new(grid(), OccupancyParams::default(), 8);
        let mut plain = OctoMapSystem::new(grid(), OccupancyParams::default());
        // Scans in two different octants (positive and negative x).
        for origin in [Point3::new(-0.5, 0.0, 0.0), Point3::new(0.5, 0.0, 0.0)] {
            sharded.insert_scan(origin, &cloud(), 20.0).unwrap();
            plain.insert_scan(origin, &cloud(), 20.0).unwrap();
            let mirror: Vec<Point3> = cloud().iter().map(|p| *p * -1.0).collect();
            sharded.insert_scan(origin, &mirror, 20.0).unwrap();
            plain.insert_scan(origin, &mirror, 20.0).unwrap();
        }
        for x in (0..256u16).step_by(5) {
            for y in (100..156u16).step_by(3) {
                let key = VoxelKey::new(x, y, 128);
                let a = sharded.occupancy(key);
                let b = plain.occupancy(key);
                match (a, b) {
                    (None, None) => {}
                    (Some(a), Some(b)) => assert!((a - b).abs() < 1e-5, "{key}"),
                    other => panic!("{key}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn imbalance_reflects_scan_locality() {
        let mut sharded = ShardedOctoMap::new(grid(), OccupancyParams::default(), 8);
        // A forward-looking scan cone: everything lands in one or two
        // octants — the paper's imbalance argument.
        sharded
            .insert_scan(Point3::new(0.5, 0.5, 0.5), &cloud(), 20.0)
            .unwrap();
        let imbalance = sharded.imbalance();
        assert!(
            imbalance > 2.0,
            "expected heavy skew for a local scan, got {imbalance:.2}"
        );
    }

    #[test]
    fn single_shard_equals_plain() {
        let mut one = ShardedOctoMap::new(grid(), OccupancyParams::default(), 1);
        one.insert_scan(Point3::ZERO, &cloud(), 20.0).unwrap();
        assert_eq!(one.imbalance(), 1.0);
        assert_eq!(
            one.is_occupied_at(Point3::new(6.0, 0.0, 0.25)).unwrap(),
            Some(true)
        );
    }
}
