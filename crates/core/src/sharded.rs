//! The "naive software parallelization" baseline of the paper's Table 1.
//!
//! The obvious way to parallelise OctoMap is to shard the octree: partition
//! space by top-level octant, give each shard its own subtree, and update
//! shards on separate threads. The paper dismisses this approach ("deploying
//! multiple CPU cores to parallelize octree does not help due to data
//! imbalance", §4.4): a sensor's scan cone is spatially local, so nearly all
//! of a batch lands in one or two shards and the other threads idle. This
//! module implements the baseline so the claim is measurable —
//! [`ShardedOctoMap::imbalance`] reports exactly the skew the paper blames.

use std::time::Instant;

use octocache_geom::{Point3, VoxelGrid, VoxelKey};
use octocache_octomap::stats::StatsSnapshot;
use octocache_octomap::{insert, rt, OccupancyOcTree, OccupancyParams, TreeLayout};
use octocache_telemetry::{
    EventKind, EventLog, EventSink, PhaseHistograms, PhaseTimes, Recorder, ScanRecord, Telemetry,
};

use crate::fault::PipelineError;
use crate::pipeline::{MappingSystem, RayTracer, ScanReport};
use crate::query::{BatchStats, PublishStats, QueryHandle, SnapshotPublisher};
use crate::routing::{self, OctantRouter};

/// OctoMap sharded by spatial octant, with per-scan parallel shard updates.
#[derive(Debug)]
pub struct ShardedOctoMap {
    shards: Vec<OccupancyOcTree>,
    /// Key → shard mapping, shared with the parallel pipeline.
    router: OctantRouter,
    grid: VoxelGrid,
    params: OccupancyParams,
    ray_tracer: RayTracer,
    batch: insert::VoxelBatch,
    shard_updates: Vec<u64>,
    telemetry: Telemetry,
    /// Summed shard counters at the end of the previous scan.
    last_tree_stats: StatsSnapshot,
    /// Sub-scan event sink when tracing is enabled: shard `s` emits its
    /// update spans on lane `s + 1` (lane 0 is the scan-driving thread).
    event_sink: Option<std::sync::Arc<EventSink>>,
    /// Armed lazily by the first [`MappingSystem::query_handle`] call.
    publisher: Option<SnapshotPublisher>,
}

/// Reassembles the shards (disjoint top-level octant groups) into one
/// self-contained read tree — the same structural merge `take_tree` does,
/// without consuming the shards.
fn snapshot_tree(shards: &[OccupancyOcTree]) -> OccupancyOcTree {
    let mut merged =
        OccupancyOcTree::with_layout(*shards[0].grid(), *shards[0].params(), shards[0].layout());
    for shard in shards {
        merged
            .merge_disjoint_top_level(shard)
            .expect("shards partition key space disjointly");
    }
    merged
}

impl ShardedOctoMap {
    /// Creates a sharded OctoMap with `num_shards` ∈ {1, 2, 4, 8} subtrees.
    ///
    /// Key-to-shard routing is [`OctantRouter`], the helper shared with the
    /// N-worker [`crate::parallel::ParallelOctoCache`], so the two backends
    /// always partition the key space identically.
    ///
    /// # Panics
    ///
    /// Panics for shard counts other than 1, 2, 4 or 8 (the router's
    /// validity rule — a shard is a bit-mask over the eight root octants).
    pub fn new(grid: VoxelGrid, params: OccupancyParams, num_shards: usize) -> Self {
        Self::with_ray_tracer(grid, params, num_shards, RayTracer::Standard)
    }

    /// As [`ShardedOctoMap::new`] with a chosen ray-tracing front-end.
    pub fn with_ray_tracer(
        grid: VoxelGrid,
        params: OccupancyParams,
        num_shards: usize,
        ray_tracer: RayTracer,
    ) -> Self {
        Self::with_layout(
            grid,
            params,
            num_shards,
            ray_tracer,
            TreeLayout::default_from_env(),
        )
    }

    /// As [`ShardedOctoMap::with_ray_tracer`] with an explicit octree
    /// storage layout for every shard (and the merged tree).
    pub fn with_layout(
        grid: VoxelGrid,
        params: OccupancyParams,
        num_shards: usize,
        ray_tracer: RayTracer,
        layout: TreeLayout,
    ) -> Self {
        let router = OctantRouter::new(num_shards, &grid);
        let backend = format!("octomap-sharded{}x{}", ray_tracer.suffix(), num_shards);
        ShardedOctoMap {
            shards: (0..num_shards)
                .map(|_| OccupancyOcTree::with_layout(grid, params, layout))
                .collect(),
            router,
            grid,
            params,
            ray_tracer,
            batch: insert::VoxelBatch::new(),
            shard_updates: vec![0; num_shards],
            telemetry: Telemetry::new(backend),
            last_tree_stats: StatsSnapshot::default(),
            event_sink: None,
            publisher: None,
        }
    }

    /// Republishes the read snapshot when a publisher is armed.
    fn republish(&mut self, scans: u64) -> (Option<PublishStats>, BatchStats) {
        let shards = &self.shards;
        match self.publisher.as_mut() {
            Some(p) => {
                let stats = p.publish_with(scans, || snapshot_tree(shards));
                (Some(stats), p.take_batch_stats())
            }
            None => (None, BatchStats::default()),
        }
    }

    /// Turns on sub-scan event tracing (per-shard batch spans). The sharded
    /// baseline takes no [`crate::config::CacheConfig`], so the switch is a
    /// method rather than a config field.
    pub fn enable_events(&mut self) {
        if self.event_sink.is_none() {
            self.event_sink = Some(EventSink::new());
        }
    }

    /// Sums the instrumentation counters of every shard.
    fn summed_tree_stats(&self) -> StatsSnapshot {
        let mut total = StatsSnapshot::default();
        for shard in &self.shards {
            total.merge(&shard.stats().snapshot());
        }
        total
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a voxel belongs to: the top octant bits of its key
    /// (delegates to the shared [`OctantRouter`]).
    #[inline]
    pub fn shard_of(&self, key: VoxelKey) -> usize {
        self.router.shard_of(key)
    }

    /// Updates routed to each shard so far.
    pub fn shard_update_counts(&self) -> &[u64] {
        &self.shard_updates
    }

    /// Load imbalance: busiest shard's share of updates divided by the fair
    /// share `1/num_shards`. A value of `num_shards` means one shard did
    /// all the work (total imbalance); `1.0` is perfect balance.
    pub fn imbalance(&self) -> f64 {
        routing::skew(&self.shard_updates)
    }
}

impl MappingSystem for ShardedOctoMap {
    fn name(&self) -> String {
        format!(
            "octomap-sharded{}x{}",
            self.ray_tracer.suffix(),
            self.shards.len()
        )
    }

    fn grid(&self) -> &VoxelGrid {
        &self.grid
    }

    fn insert_scan(
        &mut self,
        origin: Point3,
        cloud: &[Point3],
        max_range: f64,
    ) -> Result<ScanReport, PipelineError> {
        let t0 = Instant::now();
        insert::compute_update(&self.grid, origin, cloud, max_range, &mut self.batch)?;
        let deduped;
        let batch: &insert::VoxelBatch = match self.ray_tracer {
            RayTracer::Standard => &self.batch,
            RayTracer::Dedup => {
                deduped = rt::dedup_batch(&self.batch);
                &deduped
            }
        };
        // Partition by shard (serial, like a naive implementation would).
        let mut parts: Vec<Vec<insert::VoxelUpdate>> =
            vec![Vec::with_capacity(batch.len() / self.shards.len() + 1); self.shards.len()];
        for u in batch.iter() {
            let s = self.shard_of(u.key);
            parts[s].push(*u);
            self.shard_updates[s] += 1;
        }
        let observations = batch.len();
        let ray_tracing = t0.elapsed();

        // Parallel shard update: one scoped thread per non-empty shard,
        // each owning its subtree exclusively (no locks needed — this is
        // the best case for the naive approach).
        let t1 = Instant::now();
        let scan_seq = self.telemetry.scans();
        let event_sink = self.event_sink.as_ref();
        std::thread::scope(|scope| {
            for (s, (tree, updates)) in self.shards.iter_mut().zip(&parts).enumerate() {
                if updates.is_empty() {
                    continue;
                }
                let events = event_sink.map(|sink| {
                    let mut buf = sink.buffer(s as u32 + 1);
                    buf.set_scan(scan_seq);
                    buf
                });
                scope.spawn(move || {
                    let mut events = events;
                    if let Some(buf) = &mut events {
                        buf.emit_plain(EventKind::BatchBegin, updates.len() as u64);
                    }
                    for u in updates {
                        tree.update_node(u.key, u.occupied);
                    }
                    if let Some(buf) = &mut events {
                        buf.emit_plain(EventKind::BatchEnd, updates.len() as u64);
                    }
                    // Dropping the buffer drains it into the sink.
                });
            }
        });
        let octree_update = t1.elapsed();

        let times = PhaseTimes {
            ray_tracing,
            octree_update,
            ..Default::default()
        };
        let tree_after = self.summed_tree_stats();
        let tree_delta = tree_after.since(&self.last_tree_stats);
        self.last_tree_stats = tree_after;
        let scans_done = self.telemetry.scans() + 1;
        let (publish, batch_stats) = self.republish(scans_done);
        self.telemetry.record(ScanRecord {
            times,
            observations: observations as u64,
            octree_node_visits: tree_delta.node_visits,
            octree_leaf_updates: tree_delta.leaf_updates,
            octree_nodes_created: tree_delta.nodes_created,
            memory_bytes: self.shards.iter().map(|s| s.memory_usage() as u64).sum(),
            tree_layout: self.shards[0].layout().name().to_string(),
            snapshot_publish_ns: publish.map_or(0, |p| p.latency.as_nanos() as u64),
            snapshot_age_ns: publish.map_or(0, |p| p.replaced_age.as_nanos() as u64),
            batch_queries: batch_stats.queries,
            batch_nodes_visited: batch_stats.nodes_visited,
            batch_nodes_reused: batch_stats.nodes_reused,
            ..Default::default()
        });
        Ok(ScanReport {
            times,
            observations,
            cache_hits: 0,
            octree_updates: observations,
        })
    }

    fn occupancy(&mut self, key: VoxelKey) -> Option<f32> {
        self.shards[self.shard_of(key)].search(key)
    }

    fn is_occupied(&mut self, key: VoxelKey) -> Option<bool> {
        let params = self.params;
        self.occupancy(key).map(|l| params.is_occupied(l))
    }

    fn finish(&mut self) -> PhaseTimes {
        self.telemetry.flush();
        PhaseTimes::default()
    }

    fn phase_times(&self) -> PhaseTimes {
        self.telemetry.totals()
    }

    fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.telemetry.set_recorder(recorder);
    }

    fn phase_histograms(&self) -> Option<&PhaseHistograms> {
        Some(self.telemetry.histograms())
    }

    fn tree_stats(&self) -> Option<StatsSnapshot> {
        Some(self.summed_tree_stats())
    }

    fn take_events(&mut self) -> Option<EventLog> {
        // Shard buffers are scoped to each scan and drain on drop, so the
        // sink is complete whenever no scan is in flight.
        self.event_sink.as_ref().map(|s| s.take())
    }

    fn query_handle(&mut self) -> QueryHandle {
        if self.publisher.is_none() {
            let scans = self.telemetry.scans();
            self.publisher = Some(SnapshotPublisher::new(snapshot_tree(&self.shards), scans));
        }
        self.publisher
            .as_ref()
            .expect("publisher armed above")
            .handle()
    }

    fn take_tree(self: Box<Self>) -> OccupancyOcTree {
        // Shards populate disjoint top-level octants (for 8 shards; for
        // fewer, disjoint octant groups, which still never collide because
        // a voxel routes to exactly one shard), so a structural merge
        // reassembles the map.
        snapshot_tree(&self.shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::OctoMapSystem;

    fn grid() -> VoxelGrid {
        VoxelGrid::new(0.5, 8).unwrap()
    }

    fn cloud() -> Vec<Point3> {
        (0..40)
            .map(|i| Point3::new(6.0, -2.0 + i as f64 * 0.1, 0.25))
            .collect()
    }

    #[test]
    #[should_panic(expected = "must be 1, 2, 4 or 8")]
    fn rejects_odd_shard_counts() {
        ShardedOctoMap::new(grid(), OccupancyParams::default(), 3);
    }

    #[test]
    fn name_reflects_shards() {
        let s = ShardedOctoMap::new(grid(), OccupancyParams::default(), 4);
        assert_eq!(s.name(), "octomap-sharded x4".replace(' ', ""));
    }

    #[test]
    fn queries_agree_with_plain_octomap() {
        let mut sharded = ShardedOctoMap::new(grid(), OccupancyParams::default(), 8);
        let mut plain = OctoMapSystem::new(grid(), OccupancyParams::default());
        // Scans in two different octants (positive and negative x).
        for origin in [Point3::new(-0.5, 0.0, 0.0), Point3::new(0.5, 0.0, 0.0)] {
            sharded.insert_scan(origin, &cloud(), 20.0).unwrap();
            plain.insert_scan(origin, &cloud(), 20.0).unwrap();
            let mirror: Vec<Point3> = cloud().iter().map(|p| *p * -1.0).collect();
            sharded.insert_scan(origin, &mirror, 20.0).unwrap();
            plain.insert_scan(origin, &mirror, 20.0).unwrap();
        }
        for x in (0..256u16).step_by(5) {
            for y in (100..156u16).step_by(3) {
                let key = VoxelKey::new(x, y, 128);
                let a = sharded.occupancy(key);
                let b = plain.occupancy(key);
                match (a, b) {
                    (None, None) => {}
                    (Some(a), Some(b)) => assert!((a - b).abs() < 1e-5, "{key}"),
                    other => panic!("{key}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn imbalance_reflects_scan_locality() {
        let mut sharded = ShardedOctoMap::new(grid(), OccupancyParams::default(), 8);
        // A forward-looking scan cone: everything lands in one or two
        // octants — the paper's imbalance argument.
        sharded
            .insert_scan(Point3::new(0.5, 0.5, 0.5), &cloud(), 20.0)
            .unwrap();
        let imbalance = sharded.imbalance();
        assert!(
            imbalance > 2.0,
            "expected heavy skew for a local scan, got {imbalance:.2}"
        );
    }

    #[test]
    fn single_shard_equals_plain() {
        let mut one = ShardedOctoMap::new(grid(), OccupancyParams::default(), 1);
        one.insert_scan(Point3::ZERO, &cloud(), 20.0).unwrap();
        assert_eq!(one.imbalance(), 1.0);
        assert_eq!(
            one.is_occupied_at(Point3::new(6.0, 0.0, 0.25)).unwrap(),
            Some(true)
        );
    }
}
