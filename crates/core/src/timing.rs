use std::fmt;
use std::ops::{Add, AddAssign};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Wall-clock time spent in each phase of the mapping workflow.
///
/// Mirrors the decomposition of the paper's Figure 13/22 and Table 3:
/// ray tracing, cache insertion, cache eviction, octree update, shared-buffer
/// enqueue/dequeue and thread-1 wait (the mutex acquisition gap of the
/// parallel design). Phases that do not apply to a given backend stay zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTimes {
    /// Point cloud → voxel batch conversion.
    pub ray_tracing: Duration,
    /// Cache insertion (including octree seeding on misses).
    pub cache_insert: Duration,
    /// Cache eviction scan.
    pub cache_evict: Duration,
    /// Octree updates (on the critical thread for serial backends, on
    /// thread 2 for the parallel ones).
    pub octree_update: Duration,
    /// Shared-buffer enqueue on thread 1 (parallel only).
    pub enqueue: Duration,
    /// Shared-buffer dequeue on thread 2 (parallel only).
    pub dequeue: Duration,
    /// Thread 1 time spent waiting for the octree mutex (parallel only).
    pub wait: Duration,
}

impl PhaseTimes {
    /// Sum of every phase.
    pub fn total(&self) -> Duration {
        self.ray_tracing
            + self.cache_insert
            + self.cache_evict
            + self.octree_update
            + self.enqueue
            + self.dequeue
            + self.wait
    }

    /// Time spent on the critical (query-blocking) path of thread 1:
    /// everything except the octree update and dequeue, which the parallel
    /// design moves to thread 2.
    pub fn critical_path(&self) -> Duration {
        self.ray_tracing + self.cache_insert + self.cache_evict + self.enqueue + self.wait
    }
}

impl Add for PhaseTimes {
    type Output = PhaseTimes;
    fn add(self, rhs: PhaseTimes) -> PhaseTimes {
        PhaseTimes {
            ray_tracing: self.ray_tracing + rhs.ray_tracing,
            cache_insert: self.cache_insert + rhs.cache_insert,
            cache_evict: self.cache_evict + rhs.cache_evict,
            octree_update: self.octree_update + rhs.octree_update,
            enqueue: self.enqueue + rhs.enqueue,
            dequeue: self.dequeue + rhs.dequeue,
            wait: self.wait + rhs.wait,
        }
    }
}

impl AddAssign for PhaseTimes {
    fn add_assign(&mut self, rhs: PhaseTimes) {
        *self = *self + rhs;
    }
}

impl fmt::Display for PhaseTimes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ray={:.3?} insert={:.3?} evict={:.3?} tree={:.3?} enq={:.3?} deq={:.3?} wait={:.3?}",
            self.ray_tracing,
            self.cache_insert,
            self.cache_evict,
            self.octree_update,
            self.enqueue,
            self.dequeue,
            self.wait
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn total_and_critical_path() {
        let t = PhaseTimes {
            ray_tracing: ms(10),
            cache_insert: ms(20),
            cache_evict: ms(5),
            octree_update: ms(40),
            enqueue: ms(1),
            dequeue: ms(2),
            wait: ms(3),
        };
        assert_eq!(t.total(), ms(81));
        assert_eq!(t.critical_path(), ms(39));
    }

    #[test]
    fn add_accumulates_fieldwise() {
        let a = PhaseTimes {
            ray_tracing: ms(1),
            ..Default::default()
        };
        let b = PhaseTimes {
            ray_tracing: ms(2),
            octree_update: ms(4),
            ..Default::default()
        };
        let mut c = a + b;
        assert_eq!(c.ray_tracing, ms(3));
        assert_eq!(c.octree_update, ms(4));
        c += b;
        assert_eq!(c.ray_tracing, ms(5));
    }

    #[test]
    fn display_mentions_phases() {
        let s = PhaseTimes::default().to_string();
        assert!(s.contains("ray=") && s.contains("wait="));
    }
}
