//! The serial OctoCache pipeline (paper §4.2–4.3, Figure 11/13(a)).
//!
//! One thread runs the whole workflow per scan: ray tracing → cache
//! insertion → (queries) → cache eviction → octree update. The win over
//! vanilla OctoMap comes from the cache absorbing duplicated voxel updates
//! (most observations become O(1) bucket probes instead of octree round
//! trips) and from the Morton-aligned eviction order speeding up the octree
//! updates that remain.
//!
//! The scan lifecycle around this (telemetry, snapshot republish, record
//! assembly) lives in the shared [`Engine`]; this module contributes the
//! [`SerialExecutor`].

use std::time::Instant;

use octocache_geom::{Point3, VoxelGrid, VoxelKey};
use octocache_octomap::stats::StatsSnapshot;
use octocache_octomap::{insert, OccupancyOcTree, OccupancyParams};
use octocache_telemetry::{EventLog, EventSink, PhaseTimes, ScanMetrics};

use crate::cache::{AdaptiveController, AdaptivePolicy, CacheStats, EvictedCell, VoxelCache};
use crate::config::CacheConfig;
use crate::engine::{self, Engine, FlushTimes, ScanExecutor, ScanOutput};
use crate::fault::PipelineError;
use crate::pipeline::{MappingSystem, RayTracer, ScanReport};
use crate::supervisor::{PressureLevel, SupervisorParams};

/// The serial OctoCache mapping system: the scan-lifecycle [`Engine`] over
/// a [`SerialExecutor`].
///
/// See the [crate-level example](crate) for typical usage.
pub type SerialOctoCache = Engine<SerialExecutor>;

/// Scan execution for the serial OctoCache pipeline: ray tracing → cache
/// insertion → τ-eviction → Morton-ordered octree update, all on the
/// calling thread.
#[derive(Debug)]
pub struct SerialExecutor {
    cache: VoxelCache,
    tree: OccupancyOcTree,
    ray_tracer: RayTracer,
    batch: insert::VoxelBatch,
    evict_buf: Vec<EvictedCell>,
    adaptive: AdaptiveController,
    /// Sub-scan event collection point (present iff the config enabled
    /// event recording; the cache holds the lane-0 buffer).
    event_sink: Option<std::sync::Arc<EventSink>>,
}

/// The timed post-ray-tracing workflow for one pre-traced batch: cache
/// insertion → τ-eviction into `evict_buf` → octree update, filling the
/// three phase times. Free-standing so callers can pass a batch that
/// borrows a sibling field of the executor.
fn integrate(
    cache: &mut VoxelCache,
    tree: &mut OccupancyOcTree,
    evict_buf: &mut Vec<EvictedCell>,
    batch: &insert::VoxelBatch,
    times: &mut PhaseTimes,
) {
    let t1 = Instant::now();
    let lookup: &OccupancyOcTree = tree;
    for u in batch.iter() {
        cache.insert(u.key, u.occupied, |k| lookup.search(k));
    }
    times.cache_insert = t1.elapsed();

    let t2 = Instant::now();
    evict_buf.clear();
    cache.evict_into(evict_buf);
    times.cache_evict = t2.elapsed();

    let t3 = Instant::now();
    engine::apply_evictions(cache, tree, evict_buf);
    times.octree_update = t3.elapsed();
}

impl SerialOctoCache {
    /// Creates a serial OctoCache with the standard ray tracer.
    pub fn new(grid: VoxelGrid, params: OccupancyParams, config: CacheConfig) -> Self {
        Self::with_ray_tracer(grid, params, config, RayTracer::Standard)
    }

    /// Creates a serial OctoCache with a chosen ray-tracing front-end
    /// (`RayTracer::Dedup` gives the paper's OctoCache-RT).
    pub fn with_ray_tracer(
        grid: VoxelGrid,
        params: OccupancyParams,
        config: CacheConfig,
        ray_tracer: RayTracer,
    ) -> Self {
        let layout = config.resolved_tree_layout();
        let mut cache = VoxelCache::new(config, params);
        let event_sink = if config.events() {
            let sink = EventSink::new();
            cache.attach_events(sink.buffer(0));
            Some(sink)
        } else {
            None
        };
        Engine::from_executor(SerialExecutor {
            cache,
            tree: OccupancyOcTree::with_layout(grid, params, layout),
            ray_tracer,
            batch: insert::VoxelBatch::new(),
            evict_buf: Vec::new(),
            adaptive: AdaptiveController::new(None),
            event_sink,
        })
    }

    /// Enables (or disables, with `None`) online cache growth: after each
    /// scan whose windowed hit rate falls below the policy's target, the
    /// bucket array doubles — an extension over the paper's fixed-size
    /// cache (§6.2.3 shows hit rate saturating with size).
    pub fn set_adaptive_policy(&mut self, policy: Option<AdaptivePolicy>) {
        self.exec.adaptive = AdaptiveController::new(policy);
    }

    /// How often the adaptive policy has grown the cache.
    pub fn adaptive_growths(&self) -> u32 {
        self.exec.adaptive.growths()
    }

    /// The cache layer.
    pub fn cache(&self) -> &VoxelCache {
        &self.exec.cache
    }

    /// Cache behaviour counters.
    pub fn cache_stats(&self) -> &CacheStats {
        self.exec.cache.stats()
    }

    /// The backing octree. Note that pending cache contents are *not* yet in
    /// the tree; call [`MappingSystem::finish`] first when you need the tree
    /// alone to be complete.
    pub fn tree(&self) -> &OccupancyOcTree {
        &self.exec.tree
    }

    /// Consumes the system, flushing the cache, and returns the octree.
    pub fn into_tree(mut self) -> OccupancyOcTree {
        self.finish();
        self.exec.tree
    }

    /// Integrates one pre-traced voxel batch (cache insert → evict → octree
    /// update), bypassing ray tracing. Used by benches that isolate the
    /// cache from the front-end. Runs the full scan lifecycle (telemetry
    /// record, snapshot republish) like [`MappingSystem::insert_scan`].
    pub fn insert_batch(&mut self, batch: &insert::VoxelBatch) -> ScanReport {
        self.run_scan(|exec, scan_seq, metrics| Ok(exec.execute_batch(batch, scan_seq, metrics)))
            .expect("batch integration is infallible")
    }
}

impl SerialExecutor {
    /// The pre-traced-batch path behind [`SerialOctoCache::insert_batch`]:
    /// like a scan, minus ray tracing and the adaptive-growth step.
    fn execute_batch(
        &mut self,
        batch: &insert::VoxelBatch,
        scan_seq: u64,
        metrics: &mut ScanMetrics,
    ) -> ScanOutput {
        let cache_before = *self.cache.stats();
        let tree_before = self.tree.stats().snapshot();
        if let Some(buf) = self.cache.events_mut() {
            buf.set_scan(scan_seq);
        }
        integrate(
            &mut self.cache,
            &mut self.tree,
            &mut self.evict_buf,
            batch,
            &mut metrics.times,
        );
        metrics.observations = batch.len() as u64;
        self.finish_metrics(metrics, &cache_before, &tree_before)
    }

    /// Fills the cache/octree delta fields of `metrics` from the stats
    /// movement since the captured baselines and builds the scan output.
    fn finish_metrics(
        &self,
        metrics: &mut ScanMetrics,
        cache_before: &CacheStats,
        tree_before: &StatsSnapshot,
    ) -> ScanOutput {
        let cache_delta = self.cache.stats().since(cache_before);
        engine::stamp_cache_delta(metrics, &cache_delta);
        engine::stamp_tree_delta(metrics, &self.tree.stats().snapshot().since(tree_before));
        engine::stamp_tree_shape(
            metrics,
            self.tree.memory_usage() as u64,
            self.tree.layout().name(),
        );
        ScanOutput {
            cache_hits: cache_delta.hits,
            octree_updates: self.evict_buf.len(),
            deferred: None,
        }
    }
}

impl ScanExecutor for SerialExecutor {
    fn backend_name(&self) -> String {
        format!("octocache-serial{}", self.ray_tracer.suffix())
    }

    fn grid(&self) -> &VoxelGrid {
        self.tree.grid()
    }

    fn execute_scan(
        &mut self,
        origin: Point3,
        cloud: &[Point3],
        max_range: f64,
        scan_seq: u64,
        metrics: &mut ScanMetrics,
    ) -> Result<ScanOutput, PipelineError> {
        let cache_before = *self.cache.stats();
        let tree_before = self.tree.stats().snapshot();
        if let Some(buf) = self.cache.events_mut() {
            buf.set_scan(scan_seq);
        }
        let t0 = Instant::now();
        let batch = engine::trace_scan(
            self.ray_tracer,
            self.tree.grid(),
            origin,
            cloud,
            max_range,
            &mut self.batch,
        )?;
        metrics.times.ray_tracing = t0.elapsed();
        metrics.observations = batch.len() as u64;

        integrate(
            &mut self.cache,
            &mut self.tree,
            &mut self.evict_buf,
            &batch,
            &mut metrics.times,
        );
        self.adaptive.after_batch(&mut self.cache);
        Ok(self.finish_metrics(metrics, &cache_before, &tree_before))
    }

    fn snapshot_tree(&self) -> OccupancyOcTree {
        // Deep-copy plus cache overlay: the snapshot answers exactly what
        // the live cache→tree fall-through path answers at this boundary.
        let mut t = self.tree.deep_clone();
        engine::overlay_cache(&mut t, &self.cache);
        t
    }

    fn occupancy(&mut self, key: VoxelKey) -> Option<f32> {
        // Cache first (accumulated value = what OctoMap would hold), octree
        // on a miss — the paper's consistency path.
        match self.cache.get(key) {
            Some(v) => Some(v),
            None => self.tree.search(key),
        }
    }

    fn is_occupied(&mut self, key: VoxelKey) -> Option<bool> {
        let params = *self.tree.params();
        self.occupancy(key).map(|l| params.is_occupied(l))
    }

    fn flush(&mut self) -> FlushTimes {
        let t0 = Instant::now();
        let drained = self.cache.drain_all();
        let cache_evict = t0.elapsed();
        let t1 = Instant::now();
        engine::apply_evictions(&mut self.cache, &mut self.tree, &drained);
        let octree_update = t1.elapsed();
        let times = PhaseTimes {
            cache_evict,
            octree_update,
            ..Default::default()
        };
        FlushTimes {
            returned: times,
            recorded: times,
        }
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        Some(*self.cache.stats())
    }

    fn tree_stats(&self) -> Option<StatsSnapshot> {
        Some(self.tree.stats().snapshot())
    }

    fn take_events(&mut self) -> Option<EventLog> {
        if let Some(buf) = self.cache.events_mut() {
            buf.drain();
        }
        self.event_sink.as_ref().map(|s| s.take())
    }

    fn supervisor_params(&self) -> SupervisorParams {
        SupervisorParams::from_config(self.cache.config())
    }

    fn resident_bytes(&self) -> u64 {
        (self.tree.memory_usage() + self.cache.memory_usage()) as u64
    }

    fn relieve_memory(&mut self, level: PressureLevel) {
        // Elevated: an extra τ-eviction pass pushes over-threshold cells
        // to the tree early. Critical and above: drain the cache entirely
        // and prune the tree — the only step that shrinks resident bytes
        // durably. Cells carry absolute log-odds, so early application is
        // map-neutral (the consistency contract of the eviction stream).
        self.evict_buf.clear();
        self.cache.evict_into(&mut self.evict_buf);
        if level >= PressureLevel::Critical {
            let drained = self.cache.drain_all();
            self.evict_buf.extend(drained);
        }
        let cells = std::mem::take(&mut self.evict_buf);
        engine::apply_evictions(&mut self.cache, &mut self.tree, &cells);
        self.evict_buf = cells;
        self.evict_buf.clear();
        if level >= PressureLevel::Critical {
            self.tree.prune();
        }
    }

    fn take_tree(self) -> OccupancyOcTree {
        self.tree
    }
}

#[cfg(test)]
mod tests {
    use octocache_telemetry::EventKind;

    use super::*;

    fn system(w: usize, tau: usize) -> SerialOctoCache {
        let grid = VoxelGrid::new(0.5, 8).unwrap();
        let config = CacheConfig::builder()
            .num_buckets(w)
            .tau(tau)
            .build()
            .unwrap();
        SerialOctoCache::new(grid, OccupancyParams::default(), config)
    }

    fn wall_cloud() -> Vec<Point3> {
        // Dense sampling of a wall: many points per voxel -> duplicates.
        (0..60)
            .map(|i| Point3::new(6.0, -1.5 + i as f64 * 0.05, 0.25))
            .collect()
    }

    #[test]
    fn name_includes_rt_suffix() {
        assert_eq!(system(64, 4).name(), "octocache-serial");
        let grid = VoxelGrid::new(0.5, 8).unwrap();
        let cfg = CacheConfig::builder()
            .num_buckets(64)
            .tau(4)
            .build()
            .unwrap();
        let s = SerialOctoCache::with_ray_tracer(
            grid,
            OccupancyParams::default(),
            cfg,
            RayTracer::Dedup,
        );
        assert_eq!(s.name(), "octocache-serial-rt");
    }

    #[test]
    fn scan_generates_cache_hits_on_duplicates() {
        let mut s = system(1 << 10, 4);
        let report = s.insert_scan(Point3::ZERO, &wall_cloud(), 20.0).unwrap();
        assert!(report.observations > 0);
        assert!(
            report.cache_hits > 0,
            "dense scan must produce duplicate hits"
        );
        // Fewer octree updates than observations — the cache absorbed them.
        assert!(report.octree_updates < report.observations);
    }

    #[test]
    fn queries_answered_before_octree_update() {
        let mut s = system(1 << 12, 64); // huge tau: nothing evicts
        s.insert_scan(Point3::ZERO, &wall_cloud(), 20.0).unwrap();
        // Nothing (or nearly nothing) reached the tree yet…
        assert!(s.tree().num_nodes() <= 1);
        // …but queries already see the scan through the cache.
        assert_eq!(
            s.is_occupied_at(Point3::new(6.0, 0.0, 0.25)).unwrap(),
            Some(true)
        );
        assert_eq!(
            s.is_occupied_at(Point3::new(3.0, 0.0, 0.25)).unwrap(),
            Some(false)
        );
    }

    #[test]
    fn finish_flushes_cache_into_tree() {
        let mut s = system(1 << 10, 4);
        s.insert_scan(Point3::ZERO, &wall_cloud(), 20.0).unwrap();
        s.finish();
        assert!(s.cache().is_empty());
        // The tree alone answers correctly now.
        assert_eq!(
            s.tree()
                .is_occupied_at(Point3::new(6.0, 0.0, 0.25))
                .unwrap(),
            Some(true)
        );
    }

    #[test]
    fn into_tree_matches_octomap_semantics() {
        // After finish(), the map must agree voxel-for-voxel with vanilla
        // OctoMap fed the same scans.
        let grid = VoxelGrid::new(0.5, 8).unwrap();
        let params = OccupancyParams::default();
        let cfg = CacheConfig::builder()
            .num_buckets(1 << 8)
            .tau(2)
            .build()
            .unwrap();
        let mut cached = SerialOctoCache::new(grid, params, cfg);
        let mut plain = OccupancyOcTree::new(grid, params);

        let scans: Vec<(Point3, Vec<Point3>)> = (0..5)
            .map(|s| {
                let origin = Point3::new(s as f64 * 0.6, 0.0, 0.0);
                let cloud = (0..30)
                    .map(|i| Point3::new(8.0, -1.0 + i as f64 * 0.07, 0.25))
                    .collect();
                (origin, cloud)
            })
            .collect();

        for (origin, cloud) in &scans {
            cached.insert_scan(*origin, cloud, 30.0).unwrap();
            insert::insert_point_cloud(&mut plain, *origin, cloud, 30.0).unwrap();
        }
        let tree = cached.into_tree();

        // Compare decisions over the whole relevant region.
        for x in 0..40u16 {
            for y in 0..40u16 {
                let key = VoxelKey::new(120 + x, 100 + y, 128);
                assert_eq!(
                    tree.is_occupied(key),
                    plain.is_occupied(key),
                    "mismatch at {key}"
                );
            }
        }
    }

    #[test]
    fn query_consistency_with_octomap_mid_stream() {
        // At any point between scans, OctoCache answers must equal vanilla
        // OctoMap's (the cache serves accumulated values).
        let grid = VoxelGrid::new(0.5, 8).unwrap();
        let params = OccupancyParams::default();
        let cfg = CacheConfig::builder()
            .num_buckets(1 << 6)
            .tau(2)
            .build()
            .unwrap();
        let mut cached = SerialOctoCache::new(grid, params, cfg);
        let mut plain = OccupancyOcTree::new(grid, params);

        for s in 0..4 {
            let origin = Point3::new(0.0, s as f64 * 0.3, 0.0);
            let cloud: Vec<Point3> = (0..25)
                .map(|i| Point3::new(7.0, -1.0 + i as f64 * 0.09, 0.25))
                .collect();
            cached.insert_scan(origin, &cloud, 30.0).unwrap();
            insert::insert_point_cloud(&mut plain, origin, &cloud, 30.0).unwrap();

            for x in 0..36u16 {
                let key = VoxelKey::new(112 + x, 126, 128);
                let got = cached.occupancy(key);
                let want = plain.search(key);
                match (got, want) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        assert!((a - b).abs() < 1e-5, "key {key}: {a} vs {b}")
                    }
                    other => panic!("key {key}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn insert_batch_bypasses_ray_tracing() {
        let mut s = system(1 << 8, 4);
        let mut batch = insert::VoxelBatch::new();
        for i in 0..50u16 {
            batch.push(VoxelKey::new(i % 10, 0, 0), true);
        }
        let report = s.insert_batch(&batch);
        assert_eq!(report.observations, 50);
        assert!(report.cache_hits >= 40); // 10 distinct keys => 40 hits
        assert_eq!(report.times.ray_tracing, std::time::Duration::ZERO);
    }

    #[test]
    fn adaptive_policy_grows_cache_on_miss_heavy_workload() {
        let mut s = system(4, 1); // minuscule cache
        s.set_adaptive_policy(Some(crate::cache::AdaptivePolicy {
            target_hit_rate: 0.97,
            max_buckets: 1 << 12,
            min_window: 64,
        }));
        for i in 0..6 {
            // Shift the wall each scan: wide working set, heavy misses.
            let cloud: Vec<Point3> = (0..80)
                .map(|j| Point3::new(6.0 + (i % 3) as f64, -2.0 + j as f64 * 0.05, 0.25))
                .collect();
            s.insert_scan(Point3::ZERO, &cloud, 20.0).unwrap();
        }
        assert!(s.adaptive_growths() >= 1, "cache never grew");
        assert!(s.cache().config().num_buckets() > 4);
        // Consistency still holds after growth.
        assert_eq!(
            s.is_occupied_at(Point3::new(3.0, 0.0, 0.25)).unwrap(),
            Some(false)
        );
    }

    #[test]
    fn event_stream_covers_cache_and_update_path() {
        let grid = VoxelGrid::new(0.5, 8).unwrap();
        let config = CacheConfig::builder()
            .num_buckets(64)
            .tau(1)
            .events(true)
            .build()
            .unwrap();
        let mut s = SerialOctoCache::new(grid, OccupancyParams::default(), config);
        s.insert_scan(Point3::ZERO, &wall_cloud(), 20.0).unwrap();
        s.insert_scan(Point3::ZERO, &wall_cloud(), 20.0).unwrap();
        s.finish();
        let log = s.take_events().expect("events enabled");
        assert_eq!(log.dropped, 0);
        let count = |k: EventKind| log.events.iter().filter(|e| e.kind == k).count();
        assert!(count(EventKind::CacheMiss) > 0);
        assert!(
            count(EventKind::CacheHit) > 0,
            "wall scan must produce hits"
        );
        assert!(count(EventKind::CacheEvict) > 0, "tau=1 must evict");
        // One span per scan plus one for the finish flush.
        assert_eq!(count(EventKind::BatchBegin), 3);
        assert_eq!(count(EventKind::BatchEnd), 3);
        assert!(log.events.iter().all(|e| e.worker == 0));
        // Scan stamps advance with the telemetry sequence.
        assert!(log.events.iter().any(|e| e.scan == 1));
        // Event counts agree with the aggregate counters.
        let stats = MappingSystem::cache_stats(&s).unwrap();
        assert_eq!(count(EventKind::CacheHit) as u64, stats.hits);
        assert_eq!(count(EventKind::CacheMiss) as u64, stats.misses);
        assert_eq!(count(EventKind::CacheEvict) as u64, stats.evictions);
    }

    #[test]
    fn events_do_not_change_the_map() {
        let grid = VoxelGrid::new(0.5, 8).unwrap();
        let params = OccupancyParams::default();
        let mut base = CacheConfig::builder();
        base.num_buckets(64).tau(2);
        let mut plain = SerialOctoCache::new(grid, params, base.build().unwrap());
        let mut recorded = SerialOctoCache::new(grid, params, base.events(true).build().unwrap());
        for i in 0..4 {
            let origin = Point3::new(0.0, i as f64 * 0.3, 0.0);
            plain.insert_scan(origin, &wall_cloud(), 20.0).unwrap();
            recorded.insert_scan(origin, &wall_cloud(), 20.0).unwrap();
        }
        let a = plain.into_tree();
        let b = recorded.into_tree();
        for x in 0..40u16 {
            for y in 0..40u16 {
                let key = VoxelKey::new(110 + x, 100 + y, 128);
                assert_eq!(a.search(key), b.search(key), "mismatch at {key}");
            }
        }
    }

    #[test]
    fn phase_times_accumulate() {
        let mut s = system(1 << 8, 4);
        s.insert_scan(Point3::ZERO, &wall_cloud(), 20.0).unwrap();
        let t1 = s.phase_times();
        s.insert_scan(Point3::ZERO, &wall_cloud(), 20.0).unwrap();
        let t2 = s.phase_times();
        assert!(t2.cache_insert >= t1.cache_insert);
        assert!(t2.ray_tracing >= t1.ray_tracing);
    }
}
