//! The tree-distance locality functional 𝓕(S) and voxel ordering strategies
//! (paper §4.3 and Figure 10).
//!
//! For a sequence `S = a₁ … a_N` of leaf voxels, the paper defines
//!
//! ```text
//! 𝓕(S) = D(a₁,a₂) + D(a₂,a₃) + … + D(a_{N−1},a_N)
//! ```
//!
//! where `D(a,b)` is the shortest-path distance between the two leaves in the
//! octree — twice the height of their closest common ancestor. Smaller 𝓕
//! means consecutive insertions share more of the root-to-leaf path, which
//! stays hot in the CPU cache; the paper's main theorem states that ordering
//! by Morton code minimises 𝓕. [`morton_is_optimal_for`] verifies the theorem
//! exhaustively on small inputs and is exercised by this module's tests.

use octocache_geom::{morton, VoxelKey};

/// Computes 𝓕(S): the summed tree distance between consecutive voxels.
///
/// `depth` is the octree depth (common-ancestor heights saturate there).
///
/// # Example
///
/// ```
/// # use octocache::locality::locality_f;
/// # use octocache_geom::VoxelKey;
/// let siblings = [VoxelKey::new(0, 0, 0), VoxelKey::new(1, 0, 0)];
/// assert_eq!(locality_f(&siblings, 16), 2); // one hop up, one down
/// ```
pub fn locality_f(sequence: &[VoxelKey], depth: u8) -> u64 {
    sequence
        .windows(2)
        .map(|w| w[0].tree_distance(w[1], depth) as u64)
        .sum()
}

/// The voxel orderings evaluated in the paper's Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VoxelOrder {
    /// Leave the sequence as produced (the "original order in OctoMap
    /// generated from ray tracing").
    Original,
    /// Uniform random shuffle with the given seed (the paper's worst case).
    Random {
        /// Shuffle seed, for reproducibility.
        seed: u64,
    },
    /// Lexicographic sort by (x, y, z).
    AxisX,
    /// Lexicographic sort by (y, z, x).
    AxisY,
    /// Lexicographic sort by (z, x, y).
    AxisZ,
    /// Ascending Morton code — the paper's optimal order.
    Morton,
}

impl VoxelOrder {
    /// All orders, in the presentation order of Figure 10.
    pub const ALL: [VoxelOrder; 6] = [
        VoxelOrder::Random { seed: 7 },
        VoxelOrder::AxisX,
        VoxelOrder::AxisY,
        VoxelOrder::AxisZ,
        VoxelOrder::Original,
        VoxelOrder::Morton,
    ];

    /// A short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            VoxelOrder::Original => "original",
            VoxelOrder::Random { .. } => "random",
            VoxelOrder::AxisX => "sort-x",
            VoxelOrder::AxisY => "sort-y",
            VoxelOrder::AxisZ => "sort-z",
            VoxelOrder::Morton => "morton",
        }
    }

    /// Rearranges `keys` in place according to this order.
    pub fn apply(&self, keys: &mut [VoxelKey]) {
        match self {
            VoxelOrder::Original => {}
            VoxelOrder::Random { seed } => shuffle(keys, *seed),
            VoxelOrder::AxisX => keys.sort_unstable_by_key(|k| (k.x, k.y, k.z)),
            VoxelOrder::AxisY => keys.sort_unstable_by_key(|k| (k.y, k.z, k.x)),
            VoxelOrder::AxisZ => keys.sort_unstable_by_key(|k| (k.z, k.x, k.y)),
            VoxelOrder::Morton => keys.sort_unstable_by_key(|k| morton::encode(*k)),
        }
    }
}

/// Fisher–Yates shuffle driven by a SplitMix64 stream (self-contained so the
/// core crate needs no RNG dependency).
fn shuffle(keys: &mut [VoxelKey], seed: u64) {
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..keys.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        keys.swap(i, j);
    }
}

/// Exhaustively checks the paper's main theorem on a small voxel set:
/// no permutation of `keys` achieves a strictly smaller 𝓕 than the
/// Morton-sorted order. Returns the Morton 𝓕 and the true minimum.
///
/// Intended for tests and the documentation of the theorem; the search is
/// `O(n!)`, so `keys.len()` must be at most 8.
///
/// # Panics
///
/// Panics when given more than 8 keys.
pub fn morton_is_optimal_for(keys: &[VoxelKey], depth: u8) -> (u64, u64) {
    assert!(keys.len() <= 8, "exhaustive search limited to 8 keys");
    let mut morton_sorted = keys.to_vec();
    VoxelOrder::Morton.apply(&mut morton_sorted);
    let morton_f = locality_f(&morton_sorted, depth);

    let mut best = u64::MAX;
    let mut perm = keys.to_vec();
    permute(&mut perm, 0, depth, &mut best);
    (morton_f, best)
}

fn permute(keys: &mut [VoxelKey], start: usize, depth: u8, best: &mut u64) {
    if start == keys.len() {
        *best = (*best).min(locality_f(keys, depth));
        return;
    }
    for i in start..keys.len() {
        keys.swap(start, i);
        permute(keys, start + 1, depth, best);
        keys.swap(start, i);
    }
}

/// Summary of 𝓕 across the standard orders for one key set — handy for the
/// Figure 10 bench and for reports.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderReport {
    /// (order label, 𝓕 value) pairs in [`VoxelOrder::ALL`] order.
    pub entries: Vec<(&'static str, u64)>,
}

/// Computes 𝓕 for every standard order applied to `keys`.
pub fn order_report(keys: &[VoxelKey], depth: u8) -> OrderReport {
    let entries = VoxelOrder::ALL
        .iter()
        .map(|order| {
            let mut v = keys.to_vec();
            order.apply(&mut v);
            (order.label(), locality_f(&v, depth))
        })
        .collect();
    OrderReport { entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn keys_from(coords: &[(u16, u16, u16)]) -> Vec<VoxelKey> {
        coords
            .iter()
            .map(|&(x, y, z)| VoxelKey::new(x, y, z))
            .collect()
    }

    #[test]
    fn f_of_short_sequences() {
        assert_eq!(locality_f(&[], 16), 0);
        assert_eq!(locality_f(&keys_from(&[(1, 2, 3)]), 16), 0);
        // Two identical keys: distance 0.
        assert_eq!(locality_f(&keys_from(&[(1, 2, 3), (1, 2, 3)]), 16), 0);
        // Siblings: distance 2.
        assert_eq!(locality_f(&keys_from(&[(0, 0, 0), (1, 0, 0)]), 16), 2);
    }

    #[test]
    fn morton_beats_or_ties_other_orders() {
        // A 4x4x2 block of voxels.
        let keys: Vec<VoxelKey> = (0..4u16)
            .flat_map(|x| {
                (0..4u16).flat_map(move |y| (0..2u16).map(move |z| VoxelKey::new(x, y, z)))
            })
            .collect();
        let report = order_report(&keys, 16);
        let morton_f = report
            .entries
            .iter()
            .find(|(l, _)| *l == "morton")
            .unwrap()
            .1;
        for (label, f) in &report.entries {
            assert!(
                morton_f <= *f,
                "morton {} should not exceed {} ({})",
                morton_f,
                f,
                label
            );
        }
    }

    #[test]
    fn theorem_exhaustive_on_sibling_octant() {
        // All 8 children of one parent: Morton must hit the global optimum.
        let keys: Vec<VoxelKey> = (0..8u16)
            .map(|c| VoxelKey::new(c & 1, (c >> 1) & 1, (c >> 2) & 1))
            .collect();
        let (morton_f, best) = morton_is_optimal_for(&keys, 16);
        assert_eq!(morton_f, best);
        // 7 sibling transitions at distance 2 each.
        assert_eq!(morton_f, 14);
    }

    #[test]
    fn theorem_exhaustive_on_spread_keys() {
        let keys = keys_from(&[
            (0, 0, 0),
            (1, 0, 0),
            (0, 4, 0),
            (5, 5, 5),
            (2, 2, 2),
            (7, 0, 3),
        ]);
        let (morton_f, best) = morton_is_optimal_for(&keys, 16);
        assert_eq!(morton_f, best, "morton order must minimise F");
    }

    #[test]
    #[should_panic(expected = "exhaustive search limited")]
    fn exhaustive_guard() {
        let keys = vec![VoxelKey::default(); 9];
        morton_is_optimal_for(&keys, 16);
    }

    #[test]
    fn orders_are_permutations() {
        let keys: Vec<VoxelKey> = (0..50u16).map(|i| VoxelKey::new(i, i / 3, i / 7)).collect();
        for order in VoxelOrder::ALL {
            let mut v = keys.clone();
            order.apply(&mut v);
            let mut a = keys.clone();
            let mut b = v.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{} is not a permutation", order.label());
        }
    }

    #[test]
    fn shuffle_is_deterministic_per_seed() {
        let keys: Vec<VoxelKey> = (0..20u16).map(|i| VoxelKey::new(i, 0, 0)).collect();
        let mut a = keys.clone();
        let mut b = keys.clone();
        VoxelOrder::Random { seed: 42 }.apply(&mut a);
        VoxelOrder::Random { seed: 42 }.apply(&mut b);
        assert_eq!(a, b);
        let mut c = keys.clone();
        VoxelOrder::Random { seed: 43 }.apply(&mut c);
        assert_ne!(a, c, "different seeds should (almost surely) differ");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The theorem: Morton order achieves the exhaustive minimum of 𝓕
        /// for any random small key set.
        #[test]
        fn prop_morton_minimises_f(
            coords in proptest::collection::hash_set((0u16..16, 0u16..16, 0u16..16), 2..7)
        ) {
            let keys = keys_from(&coords.into_iter().collect::<Vec<_>>());
            let (morton_f, best) = morton_is_optimal_for(&keys, 16);
            prop_assert_eq!(morton_f, best);
        }

        /// 𝓕 is invariant under sequence reversal.
        #[test]
        fn prop_f_reversal_invariant(
            coords in proptest::collection::vec((0u16..64, 0u16..64, 0u16..64), 0..40)
        ) {
            let keys = keys_from(&coords);
            let mut rev = keys.clone();
            rev.reverse();
            prop_assert_eq!(locality_f(&keys, 16), locality_f(&rev, 16));
        }

        /// Morton sorting never increases 𝓕 relative to the identity order.
        #[test]
        fn prop_morton_never_worse_than_original(
            coords in proptest::collection::vec((0u16..256, 0u16..256, 0u16..256), 2..100)
        ) {
            let keys = keys_from(&coords);
            let mut sorted = keys.clone();
            VoxelOrder::Morton.apply(&mut sorted);
            prop_assert!(locality_f(&sorted, 16) <= locality_f(&keys, 16));
        }
    }
}

/// Machine-checked instances of the supplementary lemmas (A2–A6).
pub mod lemmas;
