//! Executable instances of the lemmas behind the paper's §4.3 main theorem.
//!
//! The paper proves Morton-order optimality through Lemmas A2–A6 (deferred
//! to its supplementary material). This module states each lemma as a
//! checkable predicate over concrete voxel keys and verifies them by
//! property-based testing — a machine-checked companion to the paper-proof:
//!
//! * **A2** — for any three leaves, their three pairwise closest common
//!   ancestors comprise at most two distinct nodes.
//! * **A3** — for any three leaves, the three pairwise tree distances take
//!   at most two distinct values (with the two largest equal — the
//!   ultrametric triangle).
//! * **A4** — for two distinct nodes at the same level, every
//!   cross-descendant leaf pair has one fixed distance, strictly larger
//!   than any intra-descendant distance.
//! * **A5/A6** — in an 𝓕-optimal sequence, the descendants of any node are
//!   contiguous (verified on exhaustively optimised small sequences).

use octocache_geom::VoxelKey;

/// A node of the implicit tree, identified by its level and the ancestor
/// key (low `level` bits cleared).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TreeNode {
    /// Levels above the leaves.
    pub level: u8,
    /// Minimum-corner key of the node's cube.
    pub key: VoxelKey,
}

/// The closest common ancestor of two leaves as a [`TreeNode`].
pub fn common_ancestor(a: VoxelKey, b: VoxelKey, depth: u8) -> TreeNode {
    let level = a.common_ancestor_level(b, depth);
    TreeNode {
        level,
        key: a.ancestor_at(level),
    }
}

/// Lemma A2: `A(a,b)`, `A(a,c)`, `A(b,c)` are at most two distinct nodes.
pub fn lemma_a2(a: VoxelKey, b: VoxelKey, c: VoxelKey, depth: u8) -> bool {
    let ab = common_ancestor(a, b, depth);
    let ac = common_ancestor(a, c, depth);
    let bc = common_ancestor(b, c, depth);
    let mut distinct = vec![ab];
    if !distinct.contains(&ac) {
        distinct.push(ac);
    }
    if !distinct.contains(&bc) {
        distinct.push(bc);
    }
    distinct.len() <= 2
}

/// Lemma A3: the three pairwise tree distances take at most two distinct
/// values, and the two largest are equal (the ultrametric property).
pub fn lemma_a3(a: VoxelKey, b: VoxelKey, c: VoxelKey, depth: u8) -> bool {
    let mut d = [
        a.tree_distance(b, depth),
        a.tree_distance(c, depth),
        b.tree_distance(c, depth),
    ];
    d.sort_unstable();
    // At most two distinct values…
    let distinct = if d[0] == d[1] || d[1] == d[2] { 2 } else { 3 };
    // …and the two largest equal.
    distinct <= 2 && d[1] == d[2]
}

/// Lemma A4: for two *distinct* ancestors `a`, `b` at the same `level`,
/// every cross pair of descendant leaves has the same distance, strictly
/// larger than every intra-`a` pair distance. Verified over the given
/// descendant samples (must actually descend from the stated ancestors).
pub fn lemma_a4(
    a_descendants: &[VoxelKey],
    b_descendants: &[VoxelKey],
    level: u8,
    depth: u8,
) -> bool {
    let Some(&a0) = a_descendants.first() else {
        return true;
    };
    let Some(&b0) = b_descendants.first() else {
        return true;
    };
    debug_assert!(a_descendants
        .iter()
        .all(|k| k.ancestor_at(level) == a0.ancestor_at(level)));
    debug_assert!(b_descendants
        .iter()
        .all(|k| k.ancestor_at(level) == b0.ancestor_at(level)));
    debug_assert_ne!(a0.ancestor_at(level), b0.ancestor_at(level));

    let cross_distance = a0.tree_distance(b0, depth);
    for &a in a_descendants {
        for &b in b_descendants {
            if a.tree_distance(b, depth) != cross_distance {
                return false;
            }
        }
    }
    for (i, &x) in a_descendants.iter().enumerate() {
        for &y in &a_descendants[i + 1..] {
            if x != y && x.tree_distance(y, depth) >= cross_distance {
                return false;
            }
        }
    }
    true
}

/// Lemma A6 (which subsumes A5's conclusion): in a sequence, for every
/// ancestor level, keys sharing an ancestor appear contiguously.
pub fn descendants_contiguous(sequence: &[VoxelKey], depth: u8) -> bool {
    for level in 1..=depth {
        let mut seen: Vec<VoxelKey> = Vec::new();
        let mut current: Option<VoxelKey> = None;
        for key in sequence {
            let anc = key.ancestor_at(level);
            match current {
                Some(c) if c == anc => {}
                _ => {
                    if seen.contains(&anc) {
                        return false; // ancestor group resumed after a gap
                    }
                    seen.push(anc);
                    current = Some(anc);
                }
            }
        }
    }
    true
}

/// All 𝓕-optimal orderings of a small key set (exhaustive; `keys.len()`
/// must be at most 8).
///
/// # Panics
///
/// Panics when given more than 8 keys.
pub fn optimal_sequences(keys: &[VoxelKey], depth: u8) -> Vec<Vec<VoxelKey>> {
    assert!(keys.len() <= 8, "exhaustive search limited to 8 keys");
    let mut best = u64::MAX;
    let mut optima: Vec<Vec<VoxelKey>> = Vec::new();
    let mut perm = keys.to_vec();
    fn recurse(
        keys: &mut Vec<VoxelKey>,
        start: usize,
        depth: u8,
        best: &mut u64,
        optima: &mut Vec<Vec<VoxelKey>>,
    ) {
        if start == keys.len() {
            let f = super::locality_f(keys, depth);
            match f.cmp(best) {
                std::cmp::Ordering::Less => {
                    *best = f;
                    optima.clear();
                    optima.push(keys.clone());
                }
                std::cmp::Ordering::Equal => optima.push(keys.clone()),
                std::cmp::Ordering::Greater => {}
            }
            return;
        }
        for i in start..keys.len() {
            keys.swap(start, i);
            recurse(keys, start + 1, depth, best, optima);
            keys.swap(start, i);
        }
    }
    recurse(&mut perm, 0, depth, &mut best, &mut optima);
    optima
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_key16() -> impl Strategy<Value = VoxelKey> {
        (0u16..16, 0u16..16, 0u16..16).prop_map(|(x, y, z)| VoxelKey::new(x, y, z))
    }

    #[test]
    fn lemma_a2_concrete() {
        // Two siblings and a distant leaf: A(a,b) is the parent; A(a,c) and
        // A(b,c) coincide higher up.
        let a = VoxelKey::new(0, 0, 0);
        let b = VoxelKey::new(1, 0, 0);
        let c = VoxelKey::new(8, 8, 8);
        assert!(lemma_a2(a, b, c, 16));
        let ab = common_ancestor(a, b, 16);
        let ac = common_ancestor(a, c, 16);
        let bc = common_ancestor(b, c, 16);
        assert_eq!(ab.level, 1);
        assert_eq!(ac, bc);
    }

    #[test]
    fn lemma_a3_concrete() {
        let a = VoxelKey::new(0, 0, 0);
        let b = VoxelKey::new(1, 0, 0);
        let c = VoxelKey::new(8, 8, 8);
        assert!(lemma_a3(a, b, c, 16));
        assert_eq!(a.tree_distance(c, 16), b.tree_distance(c, 16));
    }

    #[test]
    fn lemma_a4_concrete() {
        // Ancestors at level 2: blocks [0,4) and [4,8) on x.
        let a_desc: Vec<VoxelKey> = (0..4u16).map(|x| VoxelKey::new(x, 0, 0)).collect();
        let b_desc: Vec<VoxelKey> = (4..8u16).map(|x| VoxelKey::new(x, 0, 0)).collect();
        assert!(lemma_a4(&a_desc, &b_desc, 2, 16));
    }

    #[test]
    fn contiguity_checker_detects_violation() {
        // a, c share the level-1 parent; b does not. a,b,c is a violation.
        let a = VoxelKey::new(0, 0, 0);
        let c = VoxelKey::new(1, 0, 0);
        let b = VoxelKey::new(4, 4, 4);
        assert!(descendants_contiguous(&[a, c, b], 16));
        assert!(!descendants_contiguous(&[a, b, c], 16));
    }

    #[test]
    fn morton_order_satisfies_a6() {
        let mut keys: Vec<VoxelKey> = (0..4u16)
            .flat_map(|x| (0..4u16).map(move |y| VoxelKey::new(x, y, 1)))
            .collect();
        super::super::VoxelOrder::Morton.apply(&mut keys);
        assert!(descendants_contiguous(&keys, 16));
    }

    #[test]
    fn all_optima_of_small_sets_satisfy_a6() {
        let keys = [
            VoxelKey::new(0, 0, 0),
            VoxelKey::new(1, 0, 0),
            VoxelKey::new(4, 4, 0),
            VoxelKey::new(5, 4, 0),
            VoxelKey::new(2, 2, 2),
        ];
        let optima = optimal_sequences(&keys, 16);
        assert!(!optima.is_empty());
        for seq in &optima {
            assert!(
                descendants_contiguous(seq, 16),
                "optimal sequence violates A6: {seq:?}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_lemma_a2(a in arb_key16(), b in arb_key16(), c in arb_key16()) {
            prop_assert!(lemma_a2(a, b, c, 16));
        }

        #[test]
        fn prop_lemma_a3(a in arb_key16(), b in arb_key16(), c in arb_key16()) {
            prop_assert!(lemma_a3(a, b, c, 16));
        }

        #[test]
        fn prop_lemma_a4(
            ax in 0u16..4, ay in 0u16..4,
            offsets in proptest::collection::vec((0u16..4, 0u16..4, 0u16..4), 1..6),
        ) {
            // Two distinct level-2 ancestors: (4ax, 4ay, 0) and its +x
            // neighbour block.
            let a_base = VoxelKey::new(ax * 4, ay * 4, 0);
            let b_base = VoxelKey::new(ax * 4 + 16, ay * 4, 0);
            let a_desc: Vec<VoxelKey> = offsets
                .iter()
                .map(|&(x, y, z)| VoxelKey::new(a_base.x + x, a_base.y + y, z))
                .collect();
            let b_desc: Vec<VoxelKey> = offsets
                .iter()
                .map(|&(x, y, z)| VoxelKey::new(b_base.x + x, b_base.y + y, z))
                .collect();
            prop_assert!(lemma_a4(&a_desc, &b_desc, 2, 16));
        }

        /// A5/A6 on exhaustive optima of random small sets: every optimal
        /// sequence keeps ancestor groups contiguous.
        #[test]
        fn prop_optima_satisfy_a6(
            coords in proptest::collection::hash_set((0u16..8, 0u16..8, 0u16..8), 2..6)
        ) {
            let keys: Vec<VoxelKey> = coords
                .into_iter()
                .map(|(x, y, z)| VoxelKey::new(x, y, z))
                .collect();
            for seq in optimal_sequences(&keys, 16) {
                prop_assert!(descendants_contiguous(&seq, 16));
            }
        }
    }
}
