//! The self-healing supervisor: restart policy, memory governor, and
//! scan-admission gate.
//!
//! PR 3 gave the parallel pipeline a *failure* model — typed faults, an
//! integrity verdict, deterministic injection — whose answer to every
//! fault was to degrade and limp: a dead worker's octants are served
//! inline for the rest of the run. This module adds the *recovery* model
//! (DESIGN.md §7):
//!
//! * [`RestartPolicy`] bounds how often the pipeline may respawn a dead
//!   worker. The respawn itself lives in `parallel.rs` (it needs the
//!   retained per-shard trees); the policy and the healed-integrity
//!   bookkeeping live here.
//! * [`MemoryGovernor`] walks a graduated pressure ladder against the
//!   configured memory budget ([`CacheConfig::mem_budget`]): tighten
//!   cache τ-eviction, force a prune, and finally reject scans with
//!   [`PipelineError::OverBudget`](crate::fault::PipelineError). Each
//!   rung has hysteresis — it is entered above one threshold and left
//!   below a lower one — so the system oscillates gently instead of
//!   thrashing relief work on every scan.
//! * [`AdmissionGate`] sheds scans when the moving average of recent
//!   scan latencies exceeds the configured deadline
//!   ([`CacheConfig::shed_deadline`]) — bounded-latency load shedding
//!   for burst overload.
//!
//! All three are zero-cost when unconfigured: no budget means
//! [`MemoryGovernor::observe`] is never called, no deadline means the
//! gate admits unconditionally on one `Option` branch, and
//! `max_restarts = 0` short-circuits respawn before any worker state is
//! inspected.
//!
//! [`CacheConfig::mem_budget`]: crate::CacheConfig::mem_budget
//! [`CacheConfig::shed_deadline`]: crate::CacheConfig::shed_deadline

use std::time::Duration;

use crate::engine::ScanReport;

/// What an executor's configuration contributes to the engine's
/// supervisor wiring: the memory budget for the governor and the
/// admission deadline for the gate. Executors without a
/// [`CacheConfig`](crate::CacheConfig) (the baselines) report the
/// default — both off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisorParams {
    /// Memory budget in bytes; `None` disables the governor.
    pub mem_budget: Option<u64>,
    /// Scan-admission deadline; `None` disables deadline shedding.
    pub shed_deadline: Option<Duration>,
}

impl SupervisorParams {
    /// Reads the supervisor knobs off a config.
    pub fn from_config(config: &crate::CacheConfig) -> Self {
        SupervisorParams {
            mem_budget: config.mem_budget(),
            shed_deadline: config.shed_deadline(),
        }
    }
}

/// How many times, and how eagerly, the supervisor respawns dead workers.
///
/// Derived from [`CacheConfig`](crate::CacheConfig) (`max_restarts`,
/// `restart_backoff`). The budget is **per worker**: a chaos workload that
/// kills worker 0 five times under `max_restarts = 3` gets three heals and
/// then the PR 3 permanent-degrade path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RestartPolicy {
    /// Respawn budget per worker. `0` disables respawn entirely.
    pub max_restarts: u32,
    /// Delay before each respawn (gives a crashing environment time to
    /// settle; zero by default).
    pub backoff: Duration,
}

impl RestartPolicy {
    /// Reads the respawn knobs off a config.
    pub fn from_config(config: &crate::CacheConfig) -> Self {
        RestartPolicy {
            max_restarts: config.max_restarts(),
            backoff: config.restart_backoff(),
        }
    }

    /// True when the policy allows at least one respawn.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.max_restarts > 0
    }
}

/// The memory governor's pressure ladder, least to most severe.
///
/// Reported per scan as
/// [`ScanRecord::pressure_level`](octocache_telemetry::ScanRecord).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum PressureLevel {
    /// Resident bytes comfortably under budget; no intervention.
    #[default]
    Normal,
    /// First rung: the cache is asked for an extra τ-eviction pass.
    Elevated,
    /// Second rung: the cache is drained and the octree pruned.
    Critical,
    /// Top rung: scans are rejected with
    /// [`PipelineError::OverBudget`](crate::fault::PipelineError) until
    /// resident bytes fall back under the rung's exit threshold.
    OverBudget,
}

impl PressureLevel {
    /// Stable lower-case label used in telemetry records and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            PressureLevel::Normal => "normal",
            PressureLevel::Elevated => "elevated",
            PressureLevel::Critical => "critical",
            PressureLevel::OverBudget => "over-budget",
        }
    }
}

impl std::fmt::Display for PressureLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Enter/exit thresholds (percent of budget) for each rung above
/// [`PressureLevel::Normal`]. Exit sits below enter — the hysteresis band
/// that keeps relief from re-firing on every scan while resident bytes
/// hover near a boundary. `OverBudget` enters at 90% so the soak
/// invariant "resident never exceeds budget" holds with headroom for the
/// one in-flight batch the cache may buffer past its threshold.
const LADDER: [(PressureLevel, u64, u64); 3] = [
    (PressureLevel::Elevated, 60, 50),
    (PressureLevel::Critical, 75, 65),
    (PressureLevel::OverBudget, 90, 80),
];

/// Tracks resident bytes against the budget and walks the pressure
/// ladder with hysteresis.
#[derive(Debug, Clone)]
pub struct MemoryGovernor {
    budget: u64,
    level: PressureLevel,
}

impl MemoryGovernor {
    /// A governor for `budget` bytes.
    pub fn new(budget: u64) -> Self {
        MemoryGovernor {
            budget,
            level: PressureLevel::Normal,
        }
    }

    /// The configured budget in bytes.
    #[inline]
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// The current rung.
    #[inline]
    pub fn level(&self) -> PressureLevel {
        self.level
    }

    /// Feeds one resident-bytes observation. Returns the rung after the
    /// observation and whether the ladder moved *up* — the signal on
    /// which the engine triggers relief work (relief runs once per
    /// upward transition, not once per scan at a sustained level).
    pub fn observe(&mut self, resident: u64) -> (PressureLevel, bool) {
        let pct = resident
            .saturating_mul(100)
            .checked_div(self.budget)
            .unwrap_or(100);
        let mut target = PressureLevel::Normal;
        for (rung, enter, exit) in LADDER {
            let threshold = if self.level >= rung { exit } else { enter };
            if pct >= threshold {
                target = rung;
            }
        }
        let went_up = target > self.level;
        self.level = target;
        (target, went_up)
    }
}

/// Why a scan was shed instead of applied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShedReason {
    /// The memory governor's top rung: resident bytes at or above the
    /// reject threshold even after relief.
    OverBudget {
        /// Resident bytes observed after relief.
        resident_bytes: u64,
        /// The configured budget.
        budget_bytes: u64,
    },
    /// The admission gate's moving average of scan latencies exceeded
    /// the configured deadline.
    DeadlineExceeded {
        /// The latency average at admission time, in nanoseconds.
        ewma_ns: u64,
        /// The configured deadline.
        deadline: Duration,
    },
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::OverBudget {
                resident_bytes,
                budget_bytes,
            } => write!(
                f,
                "over memory budget ({:.1} of {:.1} MiB resident)",
                *resident_bytes as f64 / (1024.0 * 1024.0),
                *budget_bytes as f64 / (1024.0 * 1024.0)
            ),
            ShedReason::DeadlineExceeded { ewma_ns, deadline } => write!(
                f,
                "deadline exceeded (avg scan {:.2} ms > {:.2} ms)",
                *ewma_ns as f64 / 1e6,
                deadline.as_secs_f64() * 1e3
            ),
        }
    }
}

/// What happened to a scan submitted through
/// [`MappingSystem::submit_scan`](crate::MappingSystem::submit_scan).
#[derive(Debug, Clone)]
pub enum ScanOutcome {
    /// The scan was admitted and applied; the report is what
    /// `insert_scan` would have returned.
    Applied(ScanReport),
    /// The scan was shed by the admission gate or the memory governor.
    /// The map is unchanged by it (but the scan *was* journaled by the
    /// durability layer, flagged shed, so the journal stays a faithful
    /// input log).
    Shed(ShedReason),
}

impl ScanOutcome {
    /// True for [`ScanOutcome::Applied`].
    #[inline]
    pub fn is_applied(&self) -> bool {
        matches!(self, ScanOutcome::Applied(_))
    }

    /// The report, when the scan was applied.
    pub fn report(&self) -> Option<&ScanReport> {
        match self {
            ScanOutcome::Applied(r) => Some(r),
            ScanOutcome::Shed(_) => None,
        }
    }
}

/// EWMA weight of the newest latency sample (α = 0.3): a burst of slow
/// scans moves the average within a few samples, one outlier does not.
const EWMA_ALPHA: f64 = 0.3;

/// Deadline-aware scan admission: sheds while the latency average is
/// above the deadline, decaying the average on every shed so a finished
/// burst re-admits after a bounded number of rejections.
#[derive(Debug, Clone)]
pub struct AdmissionGate {
    deadline: Duration,
    ewma_ns: f64,
}

impl AdmissionGate {
    /// A gate that sheds when the average scan latency exceeds
    /// `deadline`.
    pub fn new(deadline: Duration) -> Self {
        AdmissionGate {
            deadline,
            ewma_ns: 0.0,
        }
    }

    /// The current latency average in nanoseconds.
    #[inline]
    pub fn ewma_ns(&self) -> u64 {
        self.ewma_ns as u64
    }

    /// Records the latency of an applied scan.
    pub fn observe_scan(&mut self, took: Duration) {
        let ns = took.as_nanos() as f64;
        if self.ewma_ns == 0.0 {
            self.ewma_ns = ns;
        } else {
            self.ewma_ns = (1.0 - EWMA_ALPHA) * self.ewma_ns + EWMA_ALPHA * ns;
        }
    }

    /// Admission check for the next scan: `Some(reason)` when it should
    /// be shed. Each shed decays the average, so shedding is
    /// self-limiting: after ~`log(overshoot)/log(1/(1-α))` rejections
    /// the gate re-admits and re-measures.
    pub fn admit(&mut self) -> Option<ShedReason> {
        let deadline_ns = self.deadline.as_nanos() as f64;
        if self.ewma_ns > deadline_ns {
            let reason = ShedReason::DeadlineExceeded {
                ewma_ns: self.ewma_ns as u64,
                deadline: self.deadline,
            };
            self.ewma_ns *= 1.0 - EWMA_ALPHA;
            Some(reason)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restart_policy_enabled_iff_budget() {
        assert!(!RestartPolicy::default().enabled());
        assert!(RestartPolicy {
            max_restarts: 1,
            backoff: Duration::ZERO
        }
        .enabled());
    }

    #[test]
    fn pressure_levels_order_and_label() {
        assert!(PressureLevel::Normal < PressureLevel::Elevated);
        assert!(PressureLevel::Elevated < PressureLevel::Critical);
        assert!(PressureLevel::Critical < PressureLevel::OverBudget);
        assert_eq!(PressureLevel::Normal.as_str(), "normal");
        assert_eq!(PressureLevel::OverBudget.to_string(), "over-budget");
    }

    #[test]
    fn governor_walks_the_ladder_up_and_down() {
        let mut g = MemoryGovernor::new(1000);
        assert_eq!(g.observe(100), (PressureLevel::Normal, false));
        // Entering each rung reports an upward transition once.
        assert_eq!(g.observe(620), (PressureLevel::Elevated, true));
        assert_eq!(g.observe(620), (PressureLevel::Elevated, false));
        assert_eq!(g.observe(760), (PressureLevel::Critical, true));
        assert_eq!(g.observe(950), (PressureLevel::OverBudget, true));
        // Full relief drops straight back to normal.
        assert_eq!(g.observe(100), (PressureLevel::Normal, false));
    }

    #[test]
    fn governor_hysteresis_holds_a_rung_between_exit_and_enter() {
        let mut g = MemoryGovernor::new(1000);
        g.observe(620); // enter Elevated at >= 60%
                        // 55% is below enter (60%) but above exit (50%): the rung holds.
        assert_eq!(g.observe(550), (PressureLevel::Elevated, false));
        // Below exit: back to normal.
        assert_eq!(g.observe(490), (PressureLevel::Normal, false));
        // And 55% from below does NOT enter the rung.
        assert_eq!(g.observe(550), (PressureLevel::Normal, false));
    }

    #[test]
    fn governor_over_budget_exits_at_eighty_percent() {
        let mut g = MemoryGovernor::new(1000);
        assert_eq!(g.observe(900).0, PressureLevel::OverBudget);
        // 85% holds the reject rung (exit is 80%)…
        assert_eq!(g.observe(850).0, PressureLevel::OverBudget);
        // …79% leaves it (down to Critical's band).
        assert_eq!(g.observe(790).0, PressureLevel::Critical);
    }

    #[test]
    fn gate_sheds_on_sustained_slowness_then_recovers() {
        let mut gate = AdmissionGate::new(Duration::from_millis(10));
        // Fast scans: always admitted.
        for _ in 0..5 {
            assert!(gate.admit().is_none());
            gate.observe_scan(Duration::from_millis(1));
        }
        // A burst of slow scans pushes the average over the deadline.
        for _ in 0..16 {
            gate.observe_scan(Duration::from_millis(50));
        }
        let reason = gate.admit().expect("must shed");
        assert!(matches!(reason, ShedReason::DeadlineExceeded { .. }));
        // Shedding decays the average; the gate re-admits in bounded steps.
        let mut sheds = 1;
        while gate.admit().is_some() {
            sheds += 1;
            assert!(sheds < 100, "gate never re-admitted");
        }
        assert!(sheds >= 2, "a 5x overshoot sheds more than once");
    }

    #[test]
    fn shed_reasons_display() {
        let a = ShedReason::OverBudget {
            resident_bytes: 900,
            budget_bytes: 1000,
        };
        let b = ShedReason::DeadlineExceeded {
            ewma_ns: 5_000_000,
            deadline: Duration::from_millis(2),
        };
        assert!(!a.to_string().is_empty());
        assert!(b.to_string().contains("5.00 ms"));
    }
}
