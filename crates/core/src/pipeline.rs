//! The common mapping-backend interface and the plain OctoMap baselines.
//!
//! Everything the evaluation compares — OctoMap, OctoMap-RT, serial and
//! parallel OctoCache, and their `-RT` variants — implements
//! [`MappingSystem`], so the UAV simulator and the benches swap backends
//! freely. The trait surface mirrors the query API the paper requires
//! OctoCache to keep compatible with vanilla OctoMap.

use std::sync::Arc;
use std::time::Instant;

use octocache_geom::{GeomError, Point3, VoxelGrid, VoxelKey};
use octocache_octomap::stats::StatsSnapshot;
use octocache_octomap::{insert, rt, OccupancyOcTree, OccupancyParams, TreeLayout};
use octocache_telemetry::{
    EventBuffer, EventKind, EventLog, EventSink, PhaseHistograms, PhaseTimes, Recorder, ScanRecord,
    Telemetry,
};

use crate::cache::CacheStats;
use crate::fault::{FaultCounters, Integrity, PipelineError};
use crate::query::{BatchStats, MapSnapshot, PublishStats, QueryHandle, SnapshotPublisher};

/// Which ray-tracing front-end a backend uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RayTracer {
    /// The standard OctoMap front-end: every ray-traced voxel observation is
    /// emitted, duplicates included.
    #[default]
    Standard,
    /// The OctoMap-RT–style deduplicating front-end (one observation per
    /// distinct voxel per batch, occupied wins).
    Dedup,
}

impl RayTracer {
    /// Suffix used in backend names (`""` or `"-rt"`).
    pub fn suffix(&self) -> &'static str {
        match self {
            RayTracer::Standard => "",
            RayTracer::Dedup => "-rt",
        }
    }
}

/// Outcome of inserting one scan.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ScanReport {
    /// Per-phase wall-clock times for this scan.
    pub times: PhaseTimes,
    /// Voxel observations produced by ray tracing (after any dedup).
    pub observations: usize,
    /// Observations that hit the cache (0 for cache-less backends).
    pub cache_hits: u64,
    /// Voxels evicted toward the octree this scan (for cache backends) or
    /// applied directly (for plain backends).
    pub octree_updates: usize,
}

/// A 3D occupancy mapping backend.
///
/// The query methods take `&mut self` because cache-based backends update
/// hit/miss statistics on lookups; results are identical to what vanilla
/// OctoMap would return (the paper's consistency guarantee, verified by the
/// cross-backend tests in `tests/consistency.rs`).
pub trait MappingSystem {
    /// A short, stable backend name (e.g. `"octomap"`, `"octocache-serial"`).
    fn name(&self) -> String;

    /// The world↔key mapping.
    fn grid(&self) -> &VoxelGrid;

    /// Ray-traces and integrates one sensor scan.
    ///
    /// Scan application is transactional at scan granularity: on `Ok` the
    /// scan is applied voxel-for-voxel identically to the serial backend; on
    /// `Err` the failure is typed and [`MappingSystem::integrity`] reports
    /// whether the map may have diverged.
    ///
    /// # Errors
    ///
    /// Propagates [`PipelineError::Geom`] for invalid origins; parallel
    /// backends additionally surface worker panics, spawn failures, stalls
    /// and partially applied batches.
    fn insert_scan(
        &mut self,
        origin: Point3,
        cloud: &[Point3],
        max_range: f64,
    ) -> Result<ScanReport, PipelineError>;

    /// Accumulated occupancy log-odds at a voxel; `None` = unknown space.
    fn occupancy(&mut self, key: VoxelKey) -> Option<f32>;

    /// Occupancy decision at a voxel.
    fn is_occupied(&mut self, key: VoxelKey) -> Option<bool>;

    /// Occupancy decision at a world point.
    ///
    /// # Errors
    ///
    /// Propagates [`GeomError`] for out-of-map points.
    fn is_occupied_at(&mut self, p: Point3) -> Result<Option<bool>, GeomError> {
        let key = self.grid().key_of(p)?;
        Ok(self.is_occupied(key))
    }

    /// Flushes all pending state into the backing octree and returns the
    /// residual phase times. After `finish`, the backing octree alone
    /// answers every query.
    fn finish(&mut self) -> PhaseTimes;

    /// Cumulative phase times over the backend's lifetime (including
    /// thread-2 work for parallel backends).
    fn phase_times(&self) -> PhaseTimes;

    /// Attaches a telemetry [`Recorder`] that receives one [`ScanRecord`]
    /// per `insert_scan`. Recording must never change mapping behaviour.
    /// The default implementation drops the recorder, for implementors
    /// without telemetry wiring.
    fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        drop(recorder);
    }

    /// Per-phase latency histograms over every scan inserted so far, when
    /// the backend tracks them.
    fn phase_histograms(&self) -> Option<&PhaseHistograms> {
        None
    }

    /// Voxel-cache counters; `None` for cache-less backends.
    fn cache_stats(&self) -> Option<CacheStats> {
        None
    }

    /// Octree instrumentation counters (summed across shards or read
    /// through the pipeline mutex), when the backend can reach them.
    fn tree_stats(&self) -> Option<StatsSnapshot> {
        None
    }

    /// Takes the sub-scan event stream collected so far, when the backend
    /// was built with `CacheConfig::events(true)`. Pending per-thread
    /// buffers are drained first, so after [`MappingSystem::finish`] the
    /// returned log is complete. `None` when event recording is off (the
    /// default) or the backend has no event wiring.
    fn take_events(&mut self) -> Option<EventLog> {
        None
    }

    /// Whether the backend has degraded after a fault, and if so how far.
    ///
    /// Backends without failure modes (everything single-threaded) are
    /// always [`Integrity::Intact`].
    fn integrity(&self) -> Integrity {
        Integrity::Intact
    }

    /// Cumulative fault/degraded-mode counters over the backend's lifetime.
    /// All-zero for backends without failure modes.
    fn fault_counters(&self) -> FaultCounters {
        FaultCounters::default()
    }

    /// A cloneable handle for lock-free concurrent reads
    /// ([`crate::query`]). The first call arms the backend's snapshot
    /// publisher (publishing the current map as epoch 0); every subsequent
    /// `insert_scan` then republishes at its scan boundary, so readers are
    /// never more than one scan stale and never take the octree mutex.
    /// Backends without a publisher pay nothing until this is called.
    fn query_handle(&mut self) -> QueryHandle;

    /// The current published [`MapSnapshot`] (arming the publisher on
    /// first use, like [`MappingSystem::query_handle`]). Between
    /// `insert_scan` calls the snapshot answers every query identically to
    /// the backend's own locked query path.
    fn snapshot(&mut self) -> Arc<MapSnapshot> {
        self.query_handle().snapshot()
    }

    /// Consumes the backend, flushing all pending state, and returns the
    /// completed octree (for serialisation, diffing, offline queries).
    fn take_tree(self: Box<Self>) -> OccupancyOcTree;
}

impl<M: MappingSystem + ?Sized> MappingSystem for Box<M> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn grid(&self) -> &VoxelGrid {
        (**self).grid()
    }
    fn insert_scan(
        &mut self,
        origin: Point3,
        cloud: &[Point3],
        max_range: f64,
    ) -> Result<ScanReport, PipelineError> {
        (**self).insert_scan(origin, cloud, max_range)
    }
    fn occupancy(&mut self, key: VoxelKey) -> Option<f32> {
        (**self).occupancy(key)
    }
    fn is_occupied(&mut self, key: VoxelKey) -> Option<bool> {
        (**self).is_occupied(key)
    }
    fn is_occupied_at(&mut self, p: Point3) -> Result<Option<bool>, GeomError> {
        (**self).is_occupied_at(p)
    }
    fn finish(&mut self) -> PhaseTimes {
        (**self).finish()
    }
    fn phase_times(&self) -> PhaseTimes {
        (**self).phase_times()
    }
    fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        (**self).set_recorder(recorder)
    }
    fn phase_histograms(&self) -> Option<&PhaseHistograms> {
        (**self).phase_histograms()
    }
    fn cache_stats(&self) -> Option<CacheStats> {
        (**self).cache_stats()
    }
    fn tree_stats(&self) -> Option<StatsSnapshot> {
        (**self).tree_stats()
    }
    fn take_events(&mut self) -> Option<EventLog> {
        (**self).take_events()
    }
    fn integrity(&self) -> Integrity {
        (**self).integrity()
    }
    fn fault_counters(&self) -> FaultCounters {
        (**self).fault_counters()
    }
    fn query_handle(&mut self) -> QueryHandle {
        (**self).query_handle()
    }
    fn snapshot(&mut self) -> Arc<MapSnapshot> {
        (**self).snapshot()
    }
    fn take_tree(self: Box<Self>) -> OccupancyOcTree {
        (*self).take_tree()
    }
}

/// The vanilla OctoMap baseline (optionally with the `-RT` front-end).
#[derive(Debug)]
pub struct OctoMapSystem {
    tree: OccupancyOcTree,
    ray_tracer: RayTracer,
    telemetry: Telemetry,
    batch: insert::VoxelBatch,
    event_sink: Option<std::sync::Arc<EventSink>>,
    events: Option<EventBuffer>,
    /// Armed lazily by the first [`MappingSystem::query_handle`] call;
    /// `None` keeps the no-reader fast path free of per-scan deep copies.
    publisher: Option<SnapshotPublisher>,
}

impl OctoMapSystem {
    /// Creates the baseline with the standard ray tracer.
    pub fn new(grid: VoxelGrid, params: OccupancyParams) -> Self {
        Self::with_ray_tracer(grid, params, RayTracer::Standard)
    }

    /// Creates the baseline with a chosen ray-tracing front-end.
    pub fn with_ray_tracer(grid: VoxelGrid, params: OccupancyParams, rt: RayTracer) -> Self {
        Self::with_layout(grid, params, rt, TreeLayout::default_from_env())
    }

    /// Creates the baseline with a chosen ray tracer and octree storage
    /// layout.
    pub fn with_layout(
        grid: VoxelGrid,
        params: OccupancyParams,
        rt: RayTracer,
        layout: TreeLayout,
    ) -> Self {
        OctoMapSystem {
            tree: OccupancyOcTree::with_layout(grid, params, layout),
            ray_tracer: rt,
            telemetry: Telemetry::new(format!("octomap{}", rt.suffix())),
            batch: insert::VoxelBatch::new(),
            event_sink: None,
            events: None,
            publisher: None,
        }
    }

    /// Resumes the baseline on an existing octree — e.g. one reconstructed
    /// by crash recovery ([`crate::durable::recover`]) — keeping the tree's
    /// grid, params and storage layout. Telemetry restarts from scan 0;
    /// durable scan epochs are tracked by [`crate::durable::DurableMap`].
    pub fn from_tree(tree: OccupancyOcTree, rt: RayTracer) -> Self {
        OctoMapSystem {
            tree,
            ray_tracer: rt,
            telemetry: Telemetry::new(format!("octomap{}", rt.suffix())),
            batch: insert::VoxelBatch::new(),
            event_sink: None,
            events: None,
            publisher: None,
        }
    }

    /// Enables sub-scan event recording (octree-update spans on lane 0;
    /// the baseline has no cache or queues). The cache-backed systems
    /// enable this through `CacheConfig::events` instead.
    pub fn enable_events(&mut self) {
        let sink = EventSink::new();
        self.events = Some(sink.buffer(0));
        self.event_sink = Some(sink);
    }

    /// The backing octree.
    pub fn tree(&self) -> &OccupancyOcTree {
        &self.tree
    }

    /// Consumes the system, returning the octree.
    pub fn into_tree(self) -> OccupancyOcTree {
        self.tree
    }

    /// Republishes the read snapshot when a publisher is armed, returning
    /// its stats plus the batch-query counters drained since last scan.
    fn republish(&mut self, scans: u64) -> (Option<PublishStats>, BatchStats) {
        let tree = &self.tree;
        match self.publisher.as_mut() {
            Some(p) => {
                let stats = p.publish_with(scans, || tree.deep_clone());
                (Some(stats), p.take_batch_stats())
            }
            None => (None, BatchStats::default()),
        }
    }
}

impl MappingSystem for OctoMapSystem {
    fn name(&self) -> String {
        format!("octomap{}", self.ray_tracer.suffix())
    }

    fn grid(&self) -> &VoxelGrid {
        self.tree.grid()
    }

    fn insert_scan(
        &mut self,
        origin: Point3,
        cloud: &[Point3],
        max_range: f64,
    ) -> Result<ScanReport, PipelineError> {
        let tree_before = self.tree.stats().snapshot();
        if let Some(buf) = &mut self.events {
            buf.set_scan(self.telemetry.scans());
        }
        let t0 = Instant::now();
        insert::compute_update(self.tree.grid(), origin, cloud, max_range, &mut self.batch)?;
        let deduped;
        let batch: &insert::VoxelBatch = match self.ray_tracer {
            RayTracer::Standard => &self.batch,
            RayTracer::Dedup => {
                deduped = rt::dedup_batch(&self.batch);
                &deduped
            }
        };
        let observations = batch.len();
        let ray_tracing = t0.elapsed();
        let t1 = Instant::now();
        if let Some(buf) = &mut self.events {
            buf.emit_plain(EventKind::BatchBegin, observations as u64);
        }
        insert::apply_batch(&mut self.tree, batch);
        if let Some(buf) = &mut self.events {
            buf.emit_plain(EventKind::BatchEnd, observations as u64);
            buf.drain();
        }
        let octree_update = t1.elapsed();
        let times = PhaseTimes {
            ray_tracing,
            octree_update,
            ..Default::default()
        };
        let tree_delta = self.tree.stats().snapshot().since(&tree_before);
        let scans_done = self.telemetry.scans() + 1;
        let (publish, batch_stats) = self.republish(scans_done);
        self.telemetry.record(ScanRecord {
            times,
            observations: observations as u64,
            octree_node_visits: tree_delta.node_visits,
            octree_leaf_updates: tree_delta.leaf_updates,
            octree_nodes_created: tree_delta.nodes_created,
            memory_bytes: self.tree.memory_usage() as u64,
            tree_layout: self.tree.layout().name().to_string(),
            snapshot_publish_ns: publish.map_or(0, |p| p.latency.as_nanos() as u64),
            snapshot_age_ns: publish.map_or(0, |p| p.replaced_age.as_nanos() as u64),
            batch_queries: batch_stats.queries,
            batch_nodes_visited: batch_stats.nodes_visited,
            batch_nodes_reused: batch_stats.nodes_reused,
            ..Default::default()
        });
        Ok(ScanReport {
            times,
            observations,
            cache_hits: 0,
            octree_updates: observations,
        })
    }

    fn occupancy(&mut self, key: VoxelKey) -> Option<f32> {
        self.tree.search(key)
    }

    fn is_occupied(&mut self, key: VoxelKey) -> Option<bool> {
        self.tree.is_occupied(key)
    }

    fn finish(&mut self) -> PhaseTimes {
        self.telemetry.flush();
        PhaseTimes::default()
    }

    fn phase_times(&self) -> PhaseTimes {
        self.telemetry.totals()
    }

    fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.telemetry.set_recorder(recorder);
    }

    fn phase_histograms(&self) -> Option<&PhaseHistograms> {
        Some(self.telemetry.histograms())
    }

    fn tree_stats(&self) -> Option<StatsSnapshot> {
        Some(self.tree.stats().snapshot())
    }

    fn take_events(&mut self) -> Option<EventLog> {
        if let Some(buf) = &mut self.events {
            buf.drain();
        }
        self.event_sink.as_ref().map(|s| s.take())
    }

    fn query_handle(&mut self) -> QueryHandle {
        if self.publisher.is_none() {
            let scans = self.telemetry.scans();
            self.publisher = Some(SnapshotPublisher::new(self.tree.deep_clone(), scans));
        }
        self.publisher
            .as_ref()
            .expect("publisher armed above")
            .handle()
    }

    fn take_tree(self: Box<Self>) -> OccupancyOcTree {
        self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> VoxelGrid {
        VoxelGrid::new(0.5, 8).unwrap()
    }

    fn wall_cloud() -> Vec<Point3> {
        (0..20)
            .map(|i| Point3::new(5.0, -2.0 + i as f64 * 0.2, 0.25))
            .collect()
    }

    #[test]
    fn names() {
        let a = OctoMapSystem::new(grid(), OccupancyParams::default());
        assert_eq!(a.name(), "octomap");
        let b =
            OctoMapSystem::with_ray_tracer(grid(), OccupancyParams::default(), RayTracer::Dedup);
        assert_eq!(b.name(), "octomap-rt");
    }

    #[test]
    fn baseline_inserts_and_queries() {
        let mut sys = OctoMapSystem::new(grid(), OccupancyParams::default());
        let report = sys.insert_scan(Point3::ZERO, &wall_cloud(), 20.0).unwrap();
        assert!(report.observations > 0);
        assert!(report.times.octree_update > std::time::Duration::ZERO);
        assert_eq!(
            sys.is_occupied_at(Point3::new(5.0, 0.0, 0.25)).unwrap(),
            Some(true)
        );
        assert_eq!(
            sys.is_occupied_at(Point3::new(2.0, 0.0, 0.25)).unwrap(),
            Some(false)
        );
        assert_eq!(sys.finish(), PhaseTimes::default());
        assert!(sys.phase_times().octree_update > std::time::Duration::ZERO);
    }

    #[test]
    fn baseline_event_spans_pair_up() {
        let mut sys = OctoMapSystem::new(grid(), OccupancyParams::default());
        assert!(sys.take_events().is_none(), "events default off");
        sys.enable_events();
        sys.insert_scan(Point3::ZERO, &wall_cloud(), 20.0).unwrap();
        sys.insert_scan(Point3::ZERO, &wall_cloud(), 20.0).unwrap();
        sys.finish();
        let log = sys.take_events().unwrap();
        let begins = log
            .events
            .iter()
            .filter(|e| e.kind == EventKind::BatchBegin)
            .count();
        let ends = log
            .events
            .iter()
            .filter(|e| e.kind == EventKind::BatchEnd)
            .count();
        assert_eq!(begins, 2);
        assert_eq!(ends, 2);
        assert!(log.events.iter().all(|e| e.worker == 0));
        assert_eq!(log.events.last().unwrap().scan, 1);
        assert_eq!(log.dropped, 0);
    }

    #[test]
    fn rt_variant_applies_fewer_updates() {
        let cloud = wall_cloud();
        let mut raw = OctoMapSystem::new(grid(), OccupancyParams::default());
        let mut ded =
            OctoMapSystem::with_ray_tracer(grid(), OccupancyParams::default(), RayTracer::Dedup);
        let r1 = raw.insert_scan(Point3::ZERO, &cloud, 20.0).unwrap();
        let r2 = ded.insert_scan(Point3::ZERO, &cloud, 20.0).unwrap();
        assert!(r2.octree_updates <= r1.octree_updates);
        // Both mark the wall occupied.
        for p in &cloud {
            assert_eq!(raw.is_occupied_at(*p).unwrap(), Some(true));
            assert_eq!(ded.is_occupied_at(*p).unwrap(), Some(true));
        }
    }
}
