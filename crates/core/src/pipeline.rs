//! The common mapping-backend interface and the plain OctoMap baselines.
//!
//! Everything the evaluation compares — OctoMap, OctoMap-RT, serial and
//! parallel OctoCache, and their `-RT` variants — implements
//! [`MappingSystem`], so the UAV simulator and the benches swap backends
//! freely. The trait surface mirrors the query API the paper requires
//! OctoCache to keep compatible with vanilla OctoMap.
//!
//! The trait is implemented once, generically, by the scan-lifecycle
//! [`Engine`]; this module contributes the baseline
//! *executor* ([`BaselineExecutor`]) that ray-traces straight into the
//! octree with no cache in front.

use std::sync::Arc;
use std::time::Instant;

use octocache_geom::{Point3, VoxelGrid, VoxelKey};
use octocache_octomap::stats::StatsSnapshot;
use octocache_octomap::{insert, OccupancyOcTree, OccupancyParams, TreeLayout};
use octocache_telemetry::{EventBuffer, EventKind, EventLog, EventSink, PhaseTimes, ScanMetrics};

use crate::engine::{self, Engine, FlushTimes, ScanExecutor, ScanOutput};
/// The mapping-backend trait and per-scan report live with the lifecycle
/// they describe, in [`crate::engine`]; re-exported here as their
/// historical home.
pub use crate::engine::{MappingSystem, ScanReport};
use crate::fault::PipelineError;

/// Which ray-tracing front-end a backend uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RayTracer {
    /// The standard OctoMap front-end: every ray-traced voxel observation is
    /// emitted, duplicates included.
    #[default]
    Standard,
    /// The OctoMap-RT–style deduplicating front-end (one observation per
    /// distinct voxel per batch, occupied wins).
    Dedup,
}

impl RayTracer {
    /// Suffix used in backend names (`""` or `"-rt"`).
    pub fn suffix(&self) -> &'static str {
        match self {
            RayTracer::Standard => "",
            RayTracer::Dedup => "-rt",
        }
    }
}

/// The vanilla OctoMap baseline (optionally with the `-RT` front-end):
/// the scan-lifecycle [`Engine`] over a [`BaselineExecutor`].
pub type OctoMapSystem = Engine<BaselineExecutor>;

/// Scan execution for the vanilla OctoMap baseline: ray-trace, optionally
/// dedup, and apply every observation straight to the octree — no cache,
/// no shards, no workers.
#[derive(Debug)]
pub struct BaselineExecutor {
    tree: OccupancyOcTree,
    ray_tracer: RayTracer,
    batch: insert::VoxelBatch,
    event_sink: Option<Arc<EventSink>>,
    events: Option<EventBuffer>,
}

impl OctoMapSystem {
    /// Creates the baseline with the standard ray tracer.
    pub fn new(grid: VoxelGrid, params: OccupancyParams) -> Self {
        Self::with_ray_tracer(grid, params, RayTracer::Standard)
    }

    /// Creates the baseline with a chosen ray-tracing front-end.
    pub fn with_ray_tracer(grid: VoxelGrid, params: OccupancyParams, rt: RayTracer) -> Self {
        Self::with_layout(grid, params, rt, TreeLayout::default_from_env())
    }

    /// Creates the baseline with a chosen ray tracer and octree storage
    /// layout.
    pub fn with_layout(
        grid: VoxelGrid,
        params: OccupancyParams,
        rt: RayTracer,
        layout: TreeLayout,
    ) -> Self {
        Engine::from_executor(BaselineExecutor {
            tree: OccupancyOcTree::with_layout(grid, params, layout),
            ray_tracer: rt,
            batch: insert::VoxelBatch::new(),
            event_sink: None,
            events: None,
        })
    }

    /// Resumes the baseline on an existing octree — e.g. one reconstructed
    /// by crash recovery ([`crate::durable::recover`]) — keeping the tree's
    /// grid, params and storage layout. Telemetry restarts from scan 0;
    /// durable scan epochs are tracked by [`crate::durable::DurableMap`].
    pub fn from_tree(tree: OccupancyOcTree, rt: RayTracer) -> Self {
        Engine::from_executor(BaselineExecutor {
            tree,
            ray_tracer: rt,
            batch: insert::VoxelBatch::new(),
            event_sink: None,
            events: None,
        })
    }

    /// Enables sub-scan event recording (octree-update spans on lane 0;
    /// the baseline has no cache or queues). The cache-backed systems
    /// enable this through `CacheConfig::events` instead.
    pub fn enable_events(&mut self) {
        let sink = EventSink::new();
        self.exec.events = Some(sink.buffer(0));
        self.exec.event_sink = Some(sink);
    }

    /// The backing octree.
    pub fn tree(&self) -> &OccupancyOcTree {
        &self.exec.tree
    }

    /// Consumes the system, returning the octree.
    pub fn into_tree(self) -> OccupancyOcTree {
        self.exec.tree
    }
}

impl ScanExecutor for BaselineExecutor {
    fn backend_name(&self) -> String {
        format!("octomap{}", self.ray_tracer.suffix())
    }

    fn grid(&self) -> &VoxelGrid {
        self.tree.grid()
    }

    fn execute_scan(
        &mut self,
        origin: Point3,
        cloud: &[Point3],
        max_range: f64,
        scan_seq: u64,
        metrics: &mut ScanMetrics,
    ) -> Result<ScanOutput, PipelineError> {
        let tree_before = self.tree.stats().snapshot();
        if let Some(buf) = &mut self.events {
            buf.set_scan(scan_seq);
        }
        let t0 = Instant::now();
        let batch = engine::trace_scan(
            self.ray_tracer,
            self.tree.grid(),
            origin,
            cloud,
            max_range,
            &mut self.batch,
        )?;
        let observations = batch.len();
        let ray_tracing = t0.elapsed();
        let t1 = Instant::now();
        if let Some(buf) = &mut self.events {
            buf.emit_plain(EventKind::BatchBegin, observations as u64);
        }
        insert::apply_batch(&mut self.tree, &batch);
        if let Some(buf) = &mut self.events {
            buf.emit_plain(EventKind::BatchEnd, observations as u64);
            buf.drain();
        }
        let octree_update = t1.elapsed();
        metrics.times = PhaseTimes {
            ray_tracing,
            octree_update,
            ..Default::default()
        };
        metrics.observations = observations as u64;
        engine::stamp_tree_delta(metrics, &self.tree.stats().snapshot().since(&tree_before));
        engine::stamp_tree_shape(
            metrics,
            self.tree.memory_usage() as u64,
            self.tree.layout().name(),
        );
        Ok(ScanOutput {
            cache_hits: 0,
            octree_updates: observations,
            deferred: None,
        })
    }

    fn snapshot_tree(&self) -> OccupancyOcTree {
        self.tree.deep_clone()
    }

    fn occupancy(&mut self, key: VoxelKey) -> Option<f32> {
        self.tree.search(key)
    }

    fn is_occupied(&mut self, key: VoxelKey) -> Option<bool> {
        self.tree.is_occupied(key)
    }

    fn flush(&mut self) -> FlushTimes {
        FlushTimes::default()
    }

    fn tree_stats(&self) -> Option<StatsSnapshot> {
        Some(self.tree.stats().snapshot())
    }

    fn take_events(&mut self) -> Option<EventLog> {
        if let Some(buf) = &mut self.events {
            buf.drain();
        }
        self.event_sink.as_ref().map(|s| s.take())
    }

    fn take_tree(self) -> OccupancyOcTree {
        self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> VoxelGrid {
        VoxelGrid::new(0.5, 8).unwrap()
    }

    fn wall_cloud() -> Vec<Point3> {
        (0..20)
            .map(|i| Point3::new(5.0, -2.0 + i as f64 * 0.2, 0.25))
            .collect()
    }

    #[test]
    fn names() {
        let a = OctoMapSystem::new(grid(), OccupancyParams::default());
        assert_eq!(a.name(), "octomap");
        let b =
            OctoMapSystem::with_ray_tracer(grid(), OccupancyParams::default(), RayTracer::Dedup);
        assert_eq!(b.name(), "octomap-rt");
    }

    #[test]
    fn baseline_inserts_and_queries() {
        let mut sys = OctoMapSystem::new(grid(), OccupancyParams::default());
        let report = sys.insert_scan(Point3::ZERO, &wall_cloud(), 20.0).unwrap();
        assert!(report.observations > 0);
        assert!(report.times.octree_update > std::time::Duration::ZERO);
        assert_eq!(
            sys.is_occupied_at(Point3::new(5.0, 0.0, 0.25)).unwrap(),
            Some(true)
        );
        assert_eq!(
            sys.is_occupied_at(Point3::new(2.0, 0.0, 0.25)).unwrap(),
            Some(false)
        );
        assert_eq!(sys.finish(), PhaseTimes::default());
        assert!(sys.phase_times().octree_update > std::time::Duration::ZERO);
    }

    #[test]
    fn baseline_event_spans_pair_up() {
        let mut sys = OctoMapSystem::new(grid(), OccupancyParams::default());
        assert!(sys.take_events().is_none(), "events default off");
        sys.enable_events();
        sys.insert_scan(Point3::ZERO, &wall_cloud(), 20.0).unwrap();
        sys.insert_scan(Point3::ZERO, &wall_cloud(), 20.0).unwrap();
        sys.finish();
        let log = sys.take_events().unwrap();
        let begins = log
            .events
            .iter()
            .filter(|e| e.kind == EventKind::BatchBegin)
            .count();
        let ends = log
            .events
            .iter()
            .filter(|e| e.kind == EventKind::BatchEnd)
            .count();
        assert_eq!(begins, 2);
        assert_eq!(ends, 2);
        assert!(log.events.iter().all(|e| e.worker == 0));
        assert_eq!(log.events.last().unwrap().scan, 1);
        assert_eq!(log.dropped, 0);
    }

    #[test]
    fn rt_variant_applies_fewer_updates() {
        let cloud = wall_cloud();
        let mut raw = OctoMapSystem::new(grid(), OccupancyParams::default());
        let mut ded =
            OctoMapSystem::with_ray_tracer(grid(), OccupancyParams::default(), RayTracer::Dedup);
        let r1 = raw.insert_scan(Point3::ZERO, &cloud, 20.0).unwrap();
        let r2 = ded.insert_scan(Point3::ZERO, &cloud, 20.0).unwrap();
        assert!(r2.octree_updates <= r1.octree_updates);
        // Both mark the wall occupied.
        for p in &cloud {
            assert_eq!(raw.is_occupied_at(*p).unwrap(), Some(true));
            assert_eq!(ded.is_occupied_at(*p).unwrap(), Some(true));
        }
    }
}
