//! Octant routing shared by the sharded baseline and the N-worker parallel
//! pipeline.
//!
//! Both [`crate::sharded::ShardedOctoMap`] and the N-worker
//! [`crate::parallel::ParallelOctoCache`] partition the key space by
//! top-level octant: a voxel's shard is the low `shard_bits` bits of its
//! root-level child index. Keeping the mapping in one place guarantees the
//! two backends can never drift — the differential test suite compares
//! their merged trees voxel for voxel, and a routing mismatch would make
//! [`octocache_octomap::OccupancyOcTree::merge_disjoint_top_level`] fail.

use octocache_geom::{VoxelGrid, VoxelKey};

/// Maps voxel keys to shard indices by top-level octant.
///
/// Valid shard counts are 1, 2, 4 and 8: the root has eight children, and a
/// power-of-two count lets the shard be a bit-mask of the octant index so
/// every shard owns a disjoint, equal-sized group of octants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OctantRouter {
    /// log2(number of shards), 0..=3.
    shard_bits: u8,
    /// The key bit selecting the root-level octant (`grid.depth() - 1`).
    top_bit: u8,
}

impl OctantRouter {
    /// Creates a router over `num_shards` ∈ {1, 2, 4, 8} shards.
    ///
    /// # Panics
    ///
    /// Panics for shard counts other than 1, 2, 4 or 8.
    pub fn new(num_shards: usize, grid: &VoxelGrid) -> Self {
        assert!(
            matches!(num_shards, 1 | 2 | 4 | 8),
            "num_shards must be 1, 2, 4 or 8"
        );
        OctantRouter {
            shard_bits: num_shards.trailing_zeros() as u8,
            top_bit: grid.depth() - 1,
        }
    }

    /// Number of shards this router partitions into.
    pub fn num_shards(&self) -> usize {
        1 << self.shard_bits
    }

    /// The shard a voxel belongs to: the low `shard_bits` bits of its
    /// top-level octant index. Always 0 for a single shard.
    #[inline]
    pub fn shard_of(&self, key: VoxelKey) -> usize {
        if self.shard_bits == 0 {
            return 0;
        }
        let octant = key.child_index(self.top_bit).as_usize();
        octant & ((1 << self.shard_bits) - 1)
    }
}

/// Load skew of per-shard counts: the busiest shard's share divided by the
/// fair share `1/len`. `1.0` is perfect balance (and the value for an empty
/// or all-zero slice); `len as f64` means one shard did all the work.
pub fn skew(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 || counts.is_empty() {
        return 1.0;
    }
    let max = *counts.iter().max().expect("non-empty") as f64;
    max / (total as f64 / counts.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> VoxelGrid {
        VoxelGrid::new(0.5, 8).unwrap()
    }

    #[test]
    #[should_panic(expected = "must be 1, 2, 4 or 8")]
    fn rejects_invalid_shard_counts() {
        OctantRouter::new(5, &grid());
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let r = OctantRouter::new(1, &grid());
        for key in [
            VoxelKey::new(0, 0, 0),
            VoxelKey::new(255, 255, 255),
            VoxelKey::new(128, 3, 200),
        ] {
            assert_eq!(r.shard_of(key), 0);
        }
    }

    #[test]
    fn shards_partition_and_nest() {
        // Every key routes to exactly one shard below num_shards, and the
        // 2- and 4-shard routings are coarsenings of the 8-shard one.
        let g = grid();
        let r8 = OctantRouter::new(8, &g);
        let r4 = OctantRouter::new(4, &g);
        let r2 = OctantRouter::new(2, &g);
        for x in (0..256u16).step_by(37) {
            for y in (0..256u16).step_by(41) {
                for z in (0..256u16).step_by(43) {
                    let key = VoxelKey::new(x, y, z);
                    let s8 = r8.shard_of(key);
                    assert!(s8 < 8);
                    assert_eq!(r4.shard_of(key), s8 & 3);
                    assert_eq!(r2.shard_of(key), s8 & 1);
                }
            }
        }
    }

    #[test]
    fn eight_shards_follow_octants() {
        // With 8 shards the shard IS the root octant: the half-grid split
        // along x/y/z determines bits 0/1/2.
        let r = OctantRouter::new(8, &grid());
        assert_eq!(r.shard_of(VoxelKey::new(0, 0, 0)), 0);
        assert_eq!(r.shard_of(VoxelKey::new(128, 0, 0)), 1);
        assert_eq!(r.shard_of(VoxelKey::new(0, 128, 0)), 2);
        assert_eq!(r.shard_of(VoxelKey::new(0, 0, 128)), 4);
        assert_eq!(r.shard_of(VoxelKey::new(128, 128, 128)), 7);
    }

    #[test]
    fn skew_metric() {
        assert_eq!(skew(&[]), 1.0);
        assert_eq!(skew(&[0, 0]), 1.0);
        assert_eq!(skew(&[5, 5, 5, 5]), 1.0);
        assert_eq!(skew(&[10, 0]), 2.0);
        assert_eq!(skew(&[8, 0, 0, 0, 0, 0, 0, 0]), 8.0);
    }
}
