//! A single-producer single-consumer ring queue.
//!
//! The parallel OctoCache pipeline (paper §4.4) connects thread 1 (cache
//! eviction) to thread 2 (octree update) through a shared buffer; the paper
//! uses the C++ `readerwriterqueue`. This module is the Rust equivalent: a
//! bounded lock-free Lamport ring with acquire/release synchronisation —
//! enqueue from exactly one thread, dequeue from exactly one other.
//!
//! # Example
//!
//! ```
//! let (mut tx, mut rx) = octocache::spsc::channel::<u32>(8);
//! tx.push(7).unwrap();
//! assert_eq!(rx.try_pop(), Some(7));
//! assert_eq!(rx.try_pop(), None);
//! ```

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::config::BackoffPolicy;

/// A bounded spin → yield → deadline backoff for the pipeline's waits.
///
/// The first `spin_iters` steps (64 by default) are pure spins (no clock
/// read, no syscall); after that each step yields the CPU, and the
/// deadline is checked once every `yields_per_check` yields. Both knobs
/// come from [`BackoffPolicy`] on
/// [`CacheConfig`](crate::CacheConfig::backoff). [`Backoff::snooze`]
/// returns `false` once the deadline has passed, which callers convert into
/// a typed [`crate::fault::PipelineError::QueueStalled`] instead of spinning
/// forever — the fault-tolerance contract of the parallel pipeline.
#[derive(Debug)]
pub struct Backoff {
    spins: u32,
    yields: u32,
    start: Option<Instant>,
    deadline: Duration,
    policy: BackoffPolicy,
}

impl Backoff {
    /// Creates a backoff that gives up after `deadline` of waiting (the
    /// clock starts at the first post-spin step, so short waits never pay
    /// for an `Instant` read), using the default [`BackoffPolicy`].
    pub fn new(deadline: Duration) -> Self {
        Self::with_policy(deadline, BackoffPolicy::default())
    }

    /// Creates a backoff with an explicit wait shape.
    pub fn with_policy(deadline: Duration, policy: BackoffPolicy) -> Self {
        Backoff {
            spins: 0,
            yields: 0,
            start: None,
            deadline,
            policy,
        }
    }

    /// Performs one wait step. Returns `false` once the deadline has
    /// elapsed; the caller should stop waiting and report a stall.
    pub fn snooze(&mut self) -> bool {
        self.spins += 1;
        if self.spins <= self.policy.spin_iters {
            std::hint::spin_loop();
            return true;
        }
        let start = *self.start.get_or_insert_with(Instant::now);
        if self.yields == 0 && start.elapsed() >= self.deadline {
            return false;
        }
        self.yields += 1;
        if self.yields >= self.policy.yields_per_check.max(1) {
            self.yields = 0;
        }
        std::thread::yield_now();
        true
    }

    /// How long this backoff has been yielding (zero while still in the
    /// spin phase).
    pub fn waited(&self) -> Duration {
        self.start.map(|s| s.elapsed()).unwrap_or(Duration::ZERO)
    }
}

struct Ring<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot the consumer will read.
    head: AtomicUsize,
    /// Next slot the producer will write.
    tail: AtomicUsize,
    mask: usize,
}

// SAFETY: the ring hands each slot to exactly one side at a time — the
// producer writes slots in `tail..head+capacity`, the consumer reads slots in
// `head..tail`, and the atomic indices order those accesses (release on
// publish, acquire on observe). `T: Send` is required because values cross
// threads.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Only one thread can be dropping the last Arc; drain leftovers.
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        let mut i = head;
        while i != tail {
            // SAFETY: slots in head..tail were written and never read.
            unsafe {
                (*self.buf[i & self.mask].get()).assume_init_drop();
            }
            i = i.wrapping_add(1);
        }
    }
}

/// Error returned by [`Producer::push`] when the ring is full; gives the
/// value back.
#[derive(Debug, PartialEq, Eq)]
pub struct Full<T>(pub T);

/// The sending half. Not `Clone` — single producer.
#[derive(Debug)]
pub struct Producer<T> {
    ring: Arc<Ring<T>>,
    /// Cached copy of `head` to avoid an atomic load per push.
    head_cache: usize,
}

/// The receiving half. Not `Clone` — single consumer.
#[derive(Debug)]
pub struct Consumer<T> {
    ring: Arc<Ring<T>>,
    /// Cached copy of `tail` to avoid an atomic load per pop.
    tail_cache: usize,
}

impl<T> std::fmt::Debug for Ring<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ring")
            .field("capacity", &(self.mask + 1))
            .finish_non_exhaustive()
    }
}

/// Creates a bounded SPSC channel with at least `capacity` slots
/// (rounded up to a power of two).
///
/// # Panics
///
/// Panics when `capacity` is zero.
pub fn channel<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "spsc capacity must be positive");
    let cap = capacity.next_power_of_two();
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let ring = Arc::new(Ring {
        buf,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        mask: cap - 1,
    });
    (
        Producer {
            ring: Arc::clone(&ring),
            head_cache: 0,
        },
        Consumer {
            ring,
            tail_cache: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.ring.mask + 1
    }

    /// Attempts to enqueue; returns the value inside [`Full`] when the ring
    /// has no free slot.
    pub fn push(&mut self, value: T) -> Result<(), Full<T>> {
        let tail = self.ring.tail.load(Ordering::Relaxed);
        if tail.wrapping_sub(self.head_cache) > self.ring.mask {
            // Refresh the cached head; the consumer may have advanced.
            self.head_cache = self.ring.head.load(Ordering::Acquire);
            if tail.wrapping_sub(self.head_cache) > self.ring.mask {
                return Err(Full(value));
            }
        }
        // SAFETY: slot `tail` is unobservable by the consumer until the
        // release store below, and the capacity check guarantees it is free.
        unsafe {
            (*self.ring.buf[tail & self.ring.mask].get()).write(value);
        }
        self.ring
            .tail
            .store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Enqueues, spinning (with yields) while the ring is full.
    pub fn push_blocking(&mut self, mut value: T) {
        let mut spins = 0u32;
        loop {
            match self.push(value) {
                Ok(()) => return,
                Err(Full(v)) => {
                    value = v;
                    spins += 1;
                    if spins > 64 {
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                }
            }
        }
    }

    /// Number of occupied slots (approximate under concurrency).
    pub fn len(&self) -> usize {
        let tail = self.ring.tail.load(Ordering::Relaxed);
        let head = self.ring.head.load(Ordering::Relaxed);
        tail.wrapping_sub(head)
    }

    /// True when no slots are occupied (approximate under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Consumer<T> {
    /// Attempts to dequeue; `None` when the ring is empty.
    pub fn try_pop(&mut self) -> Option<T> {
        let head = self.ring.head.load(Ordering::Relaxed);
        if head == self.tail_cache {
            self.tail_cache = self.ring.tail.load(Ordering::Acquire);
            if head == self.tail_cache {
                return None;
            }
        }
        // SAFETY: slot `head` was published by the producer's release store
        // (observed via the acquire load of `tail`), and the producer will
        // not reuse it until `head` advances.
        let value = unsafe { (*self.ring.buf[head & self.ring.mask].get()).assume_init_read() };
        self.ring
            .head
            .store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Number of occupied slots (approximate under concurrency).
    pub fn len(&self) -> usize {
        let tail = self.ring.tail.load(Ordering::Relaxed);
        let head = self.ring.head.load(Ordering::Relaxed);
        tail.wrapping_sub(head)
    }

    /// True when no slots are occupied (approximate under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn fifo_within_capacity() {
        let (mut tx, mut rx) = channel::<u64>(4);
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert!(matches!(tx.push(99), Err(Full(99))));
        for i in 0..4 {
            assert_eq!(rx.try_pop(), Some(i));
        }
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn capacity_rounds_up() {
        let (tx, _rx) = channel::<u8>(5);
        assert_eq!(tx.capacity(), 8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = channel::<u8>(0);
    }

    #[test]
    fn wraparound_many_times() {
        let (mut tx, mut rx) = channel::<usize>(4);
        for round in 0..100 {
            for i in 0..3 {
                tx.push(round * 3 + i).unwrap();
            }
            for i in 0..3 {
                assert_eq!(rx.try_pop(), Some(round * 3 + i));
            }
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn drop_releases_unconsumed_items() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        DROPS.store(0, Ordering::SeqCst);
        {
            let (mut tx, mut rx) = channel::<Counted>(8);
            for _ in 0..5 {
                tx.push(Counted).unwrap();
            }
            drop(rx.try_pop()); // one consumed + dropped
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn cross_thread_stress_preserves_order_and_count() {
        const N: u64 = 200_000;
        let (mut tx, mut rx) = channel::<u64>(1024);
        let done = Arc::new(AtomicBool::new(false));
        let done2 = Arc::clone(&done);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                tx.push_blocking(i);
            }
            done2.store(true, Ordering::Release);
        });
        let mut expected = 0u64;
        let mut sum = 0u64;
        loop {
            match rx.try_pop() {
                Some(v) => {
                    assert_eq!(v, expected, "out of order");
                    expected += 1;
                    sum = sum.wrapping_add(v);
                }
                None => {
                    if done.load(Ordering::Acquire) && rx.is_empty() {
                        // Double check: a final drain.
                        if rx.try_pop().is_none() {
                            break;
                        }
                    }
                    std::hint::spin_loop();
                }
            }
        }
        producer.join().unwrap();
        assert_eq!(expected, N);
        assert_eq!(sum, N * (N - 1) / 2);
    }

    #[test]
    fn backoff_spins_then_expires() {
        let mut b = Backoff::new(Duration::from_millis(5));
        // The spin phase never expires and never reads the clock.
        for _ in 0..BackoffPolicy::default().spin_iters {
            assert!(b.snooze());
        }
        assert_eq!(b.waited(), Duration::ZERO);
        // Past the spin phase the deadline eventually trips.
        let mut steps = 0u64;
        while b.snooze() {
            steps += 1;
            assert!(steps < 100_000_000, "backoff never expired");
        }
        assert!(b.waited() >= Duration::from_millis(5));
        // Once expired it stays expired.
        assert!(!b.snooze());
    }

    #[test]
    fn backoff_zero_deadline_expires_right_after_spin_phase() {
        let mut b = Backoff::new(Duration::ZERO);
        for _ in 0..BackoffPolicy::default().spin_iters {
            assert!(b.snooze());
        }
        assert!(!b.snooze());
    }

    #[test]
    fn backoff_policy_shapes_the_wait() {
        // A shorter spin phase reaches the deadline check sooner.
        let policy = BackoffPolicy {
            spin_iters: 4,
            yields_per_check: 1,
        };
        let mut b = Backoff::with_policy(Duration::ZERO, policy);
        for _ in 0..4 {
            assert!(b.snooze());
        }
        assert!(!b.snooze());
        // Coarser deadline slicing: with yields_per_check = 3 an expired
        // deadline is only noticed on the checking steps, so at most 2
        // extra yields happen after expiry.
        let policy = BackoffPolicy {
            spin_iters: 0,
            yields_per_check: 3,
        };
        let mut b = Backoff::with_policy(Duration::ZERO, policy);
        assert!(!b.snooze(), "first post-spin step checks an expired clock");
    }

    #[test]
    fn push_blocking_waits_for_space() {
        let (mut tx, mut rx) = channel::<u32>(2);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        let t = std::thread::spawn(move || {
            tx.push_blocking(3); // must wait until a pop happens
            tx
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.try_pop(), Some(1));
        let _tx = t.join().unwrap();
        assert_eq!(rx.try_pop(), Some(2));
        assert_eq!(rx.try_pop(), Some(3));
    }
}
