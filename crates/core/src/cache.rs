//! The flattened, table-based voxel cache (paper §4.2–4.3).
//!
//! The cache is an array of `w` buckets, each a small vector of cells
//! `(voxel key, accumulated log-odds)` in insertion order. A voxel maps to a
//! bucket by `hash(v) & (w-1)` or `morton(v) & (w-1)` depending on the
//! [`IndexPolicy`]. Because cells store the *accumulated* occupancy — seeded
//! from the octree on a miss — a cache hit answers queries with exactly the
//! value vanilla OctoMap would return, which is the paper's query-consistency
//! guarantee.
//!
//! Eviction (paper §4.2.2) bounds memory: after processing a batch, any
//! bucket holding more than `τ` cells evicts its oldest cells until `τ`
//! remain. Scanning buckets in index order under Morton indexing emits the
//! evicted voxels in a Morton-aligned order, which is what makes the
//! subsequent octree update fast (§4.3).

use octocache_geom::{morton, VoxelKey};
use octocache_octomap::OccupancyParams;
use octocache_telemetry::{EventBuffer, EventKind};
use serde::{Deserialize, Serialize};

use crate::config::{CacheConfig, EvictionOrder, IndexPolicy};

/// A voxel evicted from the cache, carrying its accumulated log-odds.
///
/// Evicted cells *overwrite* their value in the octree (the accumulation
/// already happened in the cache).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvictedCell {
    /// The voxel.
    pub key: VoxelKey,
    /// Accumulated, clamped log-odds.
    pub log_odds: f32,
}

#[derive(Debug, Clone, Copy)]
struct Cell {
    key: VoxelKey,
    log_odds: f32,
    /// Global insertion sequence number (for the FIFO ablation order).
    seq: u64,
    /// Hits absorbed while resident (reported on the eviction event; only
    /// maintained when event recording is on).
    hits: u32,
    /// Scan index on which the cell was inserted (event recording only).
    born_scan: u64,
}

/// Running counters of cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total insertions (observations offered to the cache).
    pub insertions: u64,
    /// Insertions that found their voxel already cached.
    pub hits: u64,
    /// Insertions that missed.
    pub misses: u64,
    /// Misses whose voxel had a prior value in the octree (seeded reads).
    pub octree_seeds: u64,
    /// Cells evicted toward the octree.
    pub evictions: u64,
    /// Point queries answered by the cache.
    pub query_hits: u64,
    /// Point queries that fell through to the octree.
    pub query_misses: u64,
}

impl CacheStats {
    /// Insertion hit rate in `[0, 1]`; 0 when nothing was inserted.
    pub fn hit_rate(&self) -> f64 {
        if self.insertions == 0 {
            0.0
        } else {
            self.hits as f64 / self.insertions as f64
        }
    }

    /// Counter deltas since an earlier snapshot `base` (mirrors
    /// `StatsSnapshot::since` on the octree side). Saturating, so a stats
    /// reset between the two snapshots yields zeros rather than wrapping.
    pub fn since(&self, base: &CacheStats) -> CacheStats {
        CacheStats {
            insertions: self.insertions.saturating_sub(base.insertions),
            hits: self.hits.saturating_sub(base.hits),
            misses: self.misses.saturating_sub(base.misses),
            octree_seeds: self.octree_seeds.saturating_sub(base.octree_seeds),
            evictions: self.evictions.saturating_sub(base.evictions),
            query_hits: self.query_hits.saturating_sub(base.query_hits),
            query_misses: self.query_misses.saturating_sub(base.query_misses),
        }
    }

    /// Adds another stats block's counters into `self` (aggregating shards
    /// or runs).
    pub fn merge(&mut self, other: &CacheStats) {
        self.insertions += other.insertions;
        self.hits += other.hits;
        self.misses += other.misses;
        self.octree_seeds += other.octree_seeds;
        self.evictions += other.evictions;
        self.query_hits += other.query_hits;
        self.query_misses += other.query_misses;
    }
}

/// The OctoCache voxel cache.
///
/// # Example
///
/// ```
/// # use octocache::{CacheConfig, VoxelCache};
/// # use octocache_geom::VoxelKey;
/// # use octocache_octomap::OccupancyParams;
/// let cfg = CacheConfig::builder().num_buckets(64).tau(2).build()?;
/// let mut cache = VoxelCache::new(cfg, OccupancyParams::default());
/// let key = VoxelKey::new(1, 2, 3);
/// let hit = cache.insert(key, true, |_| None); // no octree value yet
/// assert!(!hit);
/// assert!(cache.insert(key, true, |_| None)); // second time: a hit
/// assert!(cache.get(key).unwrap() > 0.0);
/// # Ok::<(), octocache::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct VoxelCache {
    config: CacheConfig,
    params: OccupancyParams,
    buckets: Vec<Vec<Cell>>,
    mask: u64,
    len: usize,
    peak_len: usize,
    next_seq: u64,
    stats: CacheStats,
    /// Sub-scan event buffer; `None` (the default) keeps the hot paths at
    /// one untaken branch per site.
    events: Option<EventBuffer>,
}

impl VoxelCache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig, params: OccupancyParams) -> Self {
        VoxelCache {
            config,
            params,
            buckets: vec![Vec::new(); config.num_buckets()],
            mask: (config.num_buckets() - 1) as u64,
            len: 0,
            peak_len: 0,
            next_seq: 0,
            stats: CacheStats::default(),
            events: None,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Attaches a sub-scan event buffer: every subsequent insert and
    /// eviction emits a [`CacheHit`](EventKind::CacheHit) /
    /// [`CacheMiss`](EventKind::CacheMiss) /
    /// [`CacheEvict`](EventKind::CacheEvict) event into it. Recording never
    /// changes cache behaviour.
    pub fn attach_events(&mut self, buffer: EventBuffer) {
        self.events = Some(buffer);
    }

    /// The attached event buffer, if any (backends stamp the scan index and
    /// drain it at scan boundaries).
    pub fn events_mut(&mut self) -> Option<&mut EventBuffer> {
        self.events.as_mut()
    }

    /// Counters of cache behaviour.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the statistics counters (contents untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of cells currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the cache holds no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum cell count ever held (between evictions the cache may exceed
    /// `w × τ`; the paper bounds this overshoot by one update batch).
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Approximate heap bytes used by cells right now.
    pub fn memory_usage(&self) -> usize {
        self.buckets
            .iter()
            .map(|b| b.capacity() * std::mem::size_of::<Cell>())
            .sum::<usize>()
            + self.buckets.capacity() * std::mem::size_of::<Vec<Cell>>()
    }

    /// The bucket a key maps to under the configured indexing policy.
    #[inline]
    pub fn bucket_index(&self, key: VoxelKey) -> usize {
        let code = match self.config.index_policy() {
            IndexPolicy::Morton => morton::encode(key),
            IndexPolicy::Hash => hash_key(key),
        };
        (code & self.mask) as usize
    }

    /// Offers one occupancy observation to the cache (paper §4.2.1).
    ///
    /// On a hit the cached accumulated value is advanced by `±δ`. On a miss
    /// the value is seeded by `octree_lookup` (which should return the
    /// octree's accumulated log-odds for the voxel, or `None` when the voxel
    /// is unknown, in which case the prior `t` is used), then advanced.
    ///
    /// Returns `true` on a hit.
    pub fn insert<F>(&mut self, key: VoxelKey, occupied: bool, octree_lookup: F) -> bool
    where
        F: FnOnce(VoxelKey) -> Option<f32>,
    {
        self.stats.insertions += 1;
        // One code computation serves both the bucket index and (under the
        // Morton policy, the default) the event key — recomputing the
        // interleave per emitted event is measurable at millions of events
        // per second.
        let policy = self.config.index_policy();
        let code = match policy {
            IndexPolicy::Morton => morton::encode(key),
            IndexPolicy::Hash => hash_key(key),
        };
        let bucket_idx = (code & self.mask) as usize;
        let event_key = |code: u64| match policy {
            IndexPolicy::Morton => code,
            IndexPolicy::Hash => morton::encode(key),
        };
        let bucket = &mut self.buckets[bucket_idx];
        if let Some(cell) = bucket.iter_mut().find(|c| c.key == key) {
            cell.log_odds = self.params.apply(cell.log_odds, occupied);
            self.stats.hits += 1;
            if let Some(buf) = &mut self.events {
                cell.hits += 1;
                let hits = cell.hits;
                buf.emit_cache(
                    EventKind::CacheHit,
                    event_key(code),
                    bucket_idx as u32,
                    hits,
                    0,
                );
            }
            return true;
        }
        self.stats.misses += 1;
        let seed = match octree_lookup(key) {
            Some(v) => {
                self.stats.octree_seeds += 1;
                v
            }
            None => self.params.threshold,
        };
        let value = self.params.apply(seed, occupied);
        let born_scan = match &mut self.events {
            Some(buf) => {
                buf.emit_cache(
                    EventKind::CacheMiss,
                    event_key(code),
                    bucket_idx as u32,
                    0,
                    0,
                );
                buf.scan()
            }
            None => 0,
        };
        bucket.push(Cell {
            key,
            log_odds: value,
            seq: self.next_seq,
            hits: 0,
            born_scan,
        });
        self.next_seq += 1;
        self.len += 1;
        self.peak_len = self.peak_len.max(self.len);
        false
    }

    /// Looks up the accumulated log-odds for a voxel. `None` means the
    /// caller must fall through to the octree (cache miss).
    pub fn get(&mut self, key: VoxelKey) -> Option<f32> {
        let bucket_idx = self.bucket_index(key);
        let found = self.buckets[bucket_idx]
            .iter()
            .find(|c| c.key == key)
            .map(|c| c.log_odds);
        match found {
            Some(v) => {
                self.stats.query_hits += 1;
                Some(v)
            }
            None => {
                self.stats.query_misses += 1;
                None
            }
        }
    }

    /// Read-only lookup that does not touch the query counters.
    pub fn peek(&self, key: VoxelKey) -> Option<f32> {
        let bucket_idx = self.bucket_index(key);
        self.buckets[bucket_idx]
            .iter()
            .find(|c| c.key == key)
            .map(|c| c.log_odds)
    }

    /// Evicts the oldest cells of every over-full bucket down to `τ`
    /// (paper §4.2.2), appending them to `out` in the configured
    /// [`EvictionOrder`]. Returns the number of cells evicted.
    pub fn evict_into(&mut self, out: &mut Vec<EvictedCell>) -> usize {
        let tau = self.config.tau();
        let order = self.config.eviction_order();
        let start = out.len();
        let events = &mut self.events;
        let buckets = &mut self.buckets;
        match order {
            EvictionOrder::BucketSequential | EvictionOrder::FullMortonSort => {
                for (bi, bucket) in buckets.iter_mut().enumerate() {
                    if bucket.len() > tau {
                        let n = bucket.len() - tau;
                        out.extend(bucket.drain(..n).map(|c| {
                            emit_evict(events, &c, bi as u32);
                            EvictedCell {
                                key: c.key,
                                log_odds: c.log_odds,
                            }
                        }));
                    }
                }
                if order == EvictionOrder::FullMortonSort {
                    out[start..].sort_by_key(|c| morton::encode(c.key));
                }
            }
            EvictionOrder::InsertionFifo => {
                let mut staged: Vec<(u32, Cell)> = Vec::new();
                for (bi, bucket) in buckets.iter_mut().enumerate() {
                    if bucket.len() > tau {
                        let n = bucket.len() - tau;
                        staged.extend(bucket.drain(..n).map(|c| (bi as u32, c)));
                    }
                }
                staged.sort_by_key(|(_, c)| c.seq);
                out.extend(staged.into_iter().map(|(bi, c)| {
                    emit_evict(events, &c, bi);
                    EvictedCell {
                        key: c.key,
                        log_odds: c.log_odds,
                    }
                }));
            }
        }
        let evicted = out.len() - start;
        self.len -= evicted;
        self.stats.evictions += evicted as u64;
        evicted
    }

    /// Evicts per [`VoxelCache::evict_into`] into a fresh vector.
    pub fn evict(&mut self) -> Vec<EvictedCell> {
        let mut out = Vec::new();
        self.evict_into(&mut out);
        out
    }

    /// Drains *every* cell (bucket-sequential order), leaving the cache
    /// empty. Used to flush pending state into the octree at the end of a
    /// run.
    pub fn drain_all(&mut self) -> Vec<EvictedCell> {
        let mut out = Vec::with_capacity(self.len);
        let events = &mut self.events;
        for (bi, bucket) in self.buckets.iter_mut().enumerate() {
            out.extend(bucket.drain(..).map(|c| {
                emit_evict(events, &c, bi as u32);
                EvictedCell {
                    key: c.key,
                    log_odds: c.log_odds,
                }
            }));
        }
        if self.config.eviction_order() == EvictionOrder::FullMortonSort {
            out.sort_by_key(|c| morton::encode(c.key));
        }
        self.stats.evictions += out.len() as u64;
        self.len = 0;
        out
    }

    /// Histogram of bucket occupancies (index = cell count, value = number
    /// of buckets with that count). Useful for τ tuning (paper §6.2.4).
    pub fn bucket_occupancy_histogram(&self) -> Vec<usize> {
        let max = self.buckets.iter().map(Vec::len).max().unwrap_or(0);
        let mut hist = vec![0usize; max + 1];
        for b in &self.buckets {
            hist[b.len()] += 1;
        }
        hist
    }

    /// Iterates over all cached voxels (bucket order) without removing them.
    pub fn iter(&self) -> impl Iterator<Item = EvictedCell> + '_ {
        self.buckets.iter().flatten().map(|c| EvictedCell {
            key: c.key,
            log_odds: c.log_odds,
        })
    }

    /// Doubles the bucket count, redistributing every cell (an online
    /// rehash). Contents, accumulated values and per-bucket insertion order
    /// are preserved; statistics keep accumulating.
    ///
    /// This is the mechanism behind adaptive sizing: the paper observes that
    /// a too-small cache caps the hit rate and inflates the thread-1 wait
    /// (§6.2.2–6.2.3, "indicating a need for a larger cache").
    pub fn grow(&mut self) {
        let old_w = self.buckets.len();
        let new_w = old_w * 2;
        // With power-of-two masking, each old bucket splits into exactly two
        // new buckets (i and i + old_w), preserving relative order.
        let mut new_buckets: Vec<Vec<Cell>> = vec![Vec::new(); new_w];
        self.mask = (new_w - 1) as u64;
        for (i, bucket) in self.buckets.drain(..).enumerate() {
            for cell in bucket {
                let idx = {
                    let code = match self.config.index_policy() {
                        IndexPolicy::Morton => morton::encode(cell.key),
                        IndexPolicy::Hash => hash_key(cell.key),
                    };
                    (code & self.mask) as usize
                };
                debug_assert!(idx == i || idx == i + old_w);
                new_buckets[idx].push(cell);
            }
        }
        self.buckets = new_buckets;
        self.config = CacheConfig::builder()
            .num_buckets(new_w)
            .tau(self.config.tau())
            .index_policy(self.config.index_policy())
            .eviction_order(self.config.eviction_order())
            .events(self.config.events())
            .build()
            .expect("doubling a valid config stays valid");
    }
}

/// Policy for growing the cache online when the hit rate underperforms.
///
/// An extension beyond the paper's fixed-size cache: after each batch, if
/// the recent hit rate sits below `target_hit_rate` and the cache is still
/// under `max_buckets`, the bucket array doubles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptivePolicy {
    /// Grow while the recent hit rate is below this value.
    pub target_hit_rate: f64,
    /// Upper bound on the bucket count (memory cap).
    pub max_buckets: usize,
    /// Minimum insertions in the observation window before acting.
    pub min_window: u64,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy {
            target_hit_rate: 0.8,
            max_buckets: 1 << 20,
            min_window: 4096,
        }
    }
}

/// Tracks windowed hit rates and applies an [`AdaptivePolicy`].
#[derive(Debug, Clone, Default)]
pub struct AdaptiveController {
    policy: Option<AdaptivePolicy>,
    window_start: CacheStats,
    /// Number of times the cache was grown.
    growths: u32,
}

impl AdaptiveController {
    /// Creates a controller; `None` disables adaptation.
    pub fn new(policy: Option<AdaptivePolicy>) -> Self {
        AdaptiveController {
            policy,
            window_start: CacheStats::default(),
            growths: 0,
        }
    }

    /// How many times the cache has been grown.
    pub fn growths(&self) -> u32 {
        self.growths
    }

    /// Inspects the cache after a batch and grows it if the windowed hit
    /// rate underperforms. Returns `true` when a growth happened.
    pub fn after_batch(&mut self, cache: &mut VoxelCache) -> bool {
        let Some(policy) = self.policy else {
            return false;
        };
        let now = *cache.stats();
        let window_insertions = now.insertions - self.window_start.insertions;
        if window_insertions < policy.min_window {
            return false;
        }
        let window_hits = now.hits - self.window_start.hits;
        let rate = window_hits as f64 / window_insertions as f64;
        self.window_start = now;
        if rate < policy.target_hit_rate && cache.config().num_buckets() * 2 <= policy.max_buckets {
            cache.grow();
            self.growths += 1;
            true
        } else {
            false
        }
    }
}

/// Emits a `CacheEvict` event for one cell leaving the cache (no-op when
/// recording is off).
#[inline]
fn emit_evict(events: &mut Option<EventBuffer>, c: &Cell, bucket: u32) {
    if let Some(buf) = events {
        buf.emit_cache(
            EventKind::CacheEvict,
            morton::encode(c.key),
            bucket,
            c.hits,
            c.born_scan,
        );
    }
}

/// A fast 3×u16 → u64 mixer (SplitMix64 finalizer over the packed key) for
/// the strawman hash policy.
#[inline]
fn hash_key(key: VoxelKey) -> u64 {
    let mut z = (key.x as u64) | ((key.y as u64) << 16) | ((key.z as u64) << 32);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(w: usize, tau: usize) -> VoxelCache {
        let cfg = CacheConfig::builder()
            .num_buckets(w)
            .tau(tau)
            .build()
            .unwrap();
        VoxelCache::new(cfg, OccupancyParams::default())
    }

    fn k(x: u16, y: u16, z: u16) -> VoxelKey {
        VoxelKey::new(x, y, z)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = cache(64, 2);
        assert!(!c.insert(k(1, 1, 1), true, |_| None));
        assert!(c.insert(k(1, 1, 1), true, |_| None));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.len(), 1);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn miss_seeds_from_octree_value() {
        let mut c = cache(64, 2);
        let params = OccupancyParams::default();
        // Octree already holds log-odds 1.0 for this voxel.
        c.insert(k(2, 2, 2), true, |_| Some(1.0));
        let expected = params.apply(1.0, true);
        assert_eq!(c.peek(k(2, 2, 2)), Some(expected));
        assert_eq!(c.stats().octree_seeds, 1);
    }

    #[test]
    fn miss_without_octree_uses_prior() {
        let mut c = cache(64, 2);
        let params = OccupancyParams::default();
        c.insert(k(3, 3, 3), false, |_| None);
        let expected = params.apply(params.threshold, false);
        assert_eq!(c.peek(k(3, 3, 3)), Some(expected));
        assert_eq!(c.stats().octree_seeds, 0);
    }

    #[test]
    fn accumulation_matches_octomap_rule() {
        let mut c = cache(64, 2);
        let params = OccupancyParams::default();
        let key = k(4, 4, 4);
        let mut expected = params.threshold;
        for occ in [true, true, false, true, false, false, false] {
            c.insert(key, occ, |_| None);
            expected = params.apply(expected, occ);
        }
        assert_eq!(c.peek(key), Some(expected));
    }

    #[test]
    fn get_counts_queries() {
        let mut c = cache(64, 2);
        c.insert(k(1, 0, 0), true, |_| None);
        assert!(c.get(k(1, 0, 0)).is_some());
        assert!(c.get(k(9, 9, 9)).is_none());
        assert_eq!(c.stats().query_hits, 1);
        assert_eq!(c.stats().query_misses, 1);
    }

    #[test]
    fn eviction_keeps_tau_newest_per_bucket() {
        // Single bucket: everything collides.
        let mut c = cache(1, 2);
        for i in 0..5u16 {
            c.insert(k(i, 0, 0), true, |_| None);
        }
        assert_eq!(c.len(), 5);
        let evicted = c.evict();
        // Oldest 3 evicted, in insertion order.
        assert_eq!(evicted.len(), 3);
        let keys: Vec<u16> = evicted.iter().map(|e| e.key.x).collect();
        assert_eq!(keys, vec![0, 1, 2]);
        assert_eq!(c.len(), 2);
        assert!(c.peek(k(3, 0, 0)).is_some());
        assert!(c.peek(k(4, 0, 0)).is_some());
        assert!(c.peek(k(0, 0, 0)).is_none());
    }

    #[test]
    fn eviction_no_op_when_under_tau() {
        let mut c = cache(64, 4);
        for i in 0..10u16 {
            c.insert(k(i, i, i), true, |_| None);
        }
        // 10 distinct voxels across 64 buckets: each bucket <= tau almost
        // surely, but even if not, evict only trims over-full buckets.
        let before = c.len();
        let evicted = c.evict();
        assert_eq!(before - evicted.len(), c.len());
        for b in c.bucket_occupancy_histogram().iter().enumerate() {
            let (occupancy, _count) = b;
            assert!(occupancy <= 4);
        }
    }

    #[test]
    fn morton_indexing_groups_siblings() {
        // 8 children of one parent have consecutive Morton codes, so with
        // w >= 8 they land in consecutive buckets; with w = 8 they cover
        // each bucket exactly once.
        let mut c = cache(8, 1);
        for i in 0..8u16 {
            let key = k(i & 1, (i >> 1) & 1, (i >> 2) & 1);
            c.insert(key, true, |_| None);
        }
        let hist = c.bucket_occupancy_histogram();
        assert_eq!(hist.get(1).copied().unwrap_or(0), 8, "{hist:?}");
    }

    #[test]
    fn bucket_sequential_eviction_is_morton_aligned() {
        // With Morton indexing and w buckets, evicted voxels come out
        // ordered by (morton mod w) — verify for keys that all differ only
        // in their low bits so morton mod w == morton.
        let mut c = cache(64, 1);
        let mut keys: Vec<VoxelKey> = (0..4u16)
            .flat_map(|x| (0..4u16).map(move |y| k(x, y, 0)))
            .collect();
        // Insert in a scrambled order.
        keys.reverse();
        for (i, &key) in keys.iter().enumerate() {
            // Duplicate one key to make one bucket over-full.
            c.insert(key, i % 2 == 0, |_| None);
        }
        let mut out = Vec::new();
        // Force eviction of everything by draining.
        out.extend(c.drain_all());
        let codes: Vec<u64> = out.iter().map(|e| morton::encode(e.key)).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        assert_eq!(codes, sorted, "drain order not Morton-aligned");
    }

    #[test]
    fn fifo_order_ablation() {
        let cfg = CacheConfig::builder()
            .num_buckets(4)
            .tau(1)
            .eviction_order(EvictionOrder::InsertionFifo)
            .build()
            .unwrap();
        let mut c = VoxelCache::new(cfg, OccupancyParams::default());
        // 3 keys per bucket 0 (x=0,y=0,z=0 bucket under morton&3).
        let keys = [k(0, 0, 0), k(4, 0, 0), k(8, 0, 0)];
        for &key in &keys {
            c.insert(key, true, |_| None);
        }
        let evicted = c.evict();
        assert_eq!(evicted.len(), 2);
        assert_eq!(evicted[0].key, keys[0]);
        assert_eq!(evicted[1].key, keys[1]);
    }

    #[test]
    fn full_morton_sort_order() {
        let cfg = CacheConfig::builder()
            .num_buckets(4)
            .tau(1)
            .eviction_order(EvictionOrder::FullMortonSort)
            .build()
            .unwrap();
        let mut c = VoxelCache::new(cfg, OccupancyParams::default());
        for x in (0..12u16).rev() {
            c.insert(k(x, 5, 2), true, |_| None);
        }
        let evicted = c.evict();
        let codes: Vec<u64> = evicted.iter().map(|e| morton::encode(e.key)).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        assert_eq!(codes, sorted);
    }

    #[test]
    fn drain_all_empties() {
        let mut c = cache(16, 4);
        for i in 0..40u16 {
            c.insert(k(i, 1, 2), true, |_| None);
        }
        let n = c.len();
        let all = c.drain_all();
        assert_eq!(all.len(), n);
        assert!(c.is_empty());
        assert_eq!(c.iter().count(), 0);
    }

    #[test]
    fn peak_len_tracks_overshoot() {
        let mut c = cache(1, 1);
        for i in 0..10u16 {
            c.insert(k(i, 0, 0), true, |_| None);
        }
        assert_eq!(c.peak_len(), 10);
        c.evict();
        assert_eq!(c.len(), 1);
        assert_eq!(c.peak_len(), 10);
    }

    #[test]
    fn hash_policy_distributes() {
        let cfg = CacheConfig::builder()
            .num_buckets(64)
            .tau(4)
            .index_policy(IndexPolicy::Hash)
            .build()
            .unwrap();
        let mut c = VoxelCache::new(cfg, OccupancyParams::default());
        for x in 0..32u16 {
            for y in 0..8u16 {
                c.insert(k(x, y, 0), true, |_| None);
            }
        }
        let hist = c.bucket_occupancy_histogram();
        // No bucket should hold a wildly disproportionate share.
        assert!(
            hist.len() - 1 <= 16,
            "max occupancy {} too high",
            hist.len() - 1
        );
    }

    #[test]
    fn memory_usage_is_positive_once_filled() {
        let mut c = cache(16, 2);
        c.insert(k(1, 2, 3), true, |_| None);
        assert!(c.memory_usage() > 0);
    }

    #[test]
    fn grow_preserves_contents_and_values() {
        let mut c = cache(4, 2);
        let keys: Vec<VoxelKey> = (0..30u16).map(|i| k(i, i / 2, 3)).collect();
        for (i, &key) in keys.iter().enumerate() {
            c.insert(key, i % 3 != 0, |_| None);
        }
        let before: std::collections::HashMap<VoxelKey, f32> =
            c.iter().map(|e| (e.key, e.log_odds)).collect();
        let len_before = c.len();
        c.grow();
        assert_eq!(c.config().num_buckets(), 8);
        assert_eq!(c.len(), len_before);
        for (key, value) in before {
            assert_eq!(c.peek(key), Some(value), "{key} lost by grow");
        }
        // Growing twice more keeps working.
        c.grow();
        c.grow();
        assert_eq!(c.config().num_buckets(), 32);
        assert_eq!(c.len(), len_before);
    }

    #[test]
    fn grow_preserves_fifo_eviction_order_within_buckets() {
        let mut c = cache(1, 1);
        for i in 0..6u16 {
            c.insert(k(i * 4, 0, 0), true, |_| None); // same bucket pre-grow
        }
        c.grow(); // splits into 2 buckets
        let mut evicted = Vec::new();
        c.evict_into(&mut evicted);
        // Within each destination bucket the earliest-inserted cells left
        // first: x values must be increasing per morton-class.
        for w in evicted.windows(2) {
            if c.bucket_index(w[0].key) == c.bucket_index(w[1].key) {
                assert!(w[0].key.x < w[1].key.x);
            }
        }
    }

    #[test]
    fn adaptive_controller_grows_under_low_hit_rate() {
        let cfg = CacheConfig::builder()
            .num_buckets(2)
            .tau(1)
            .build()
            .unwrap();
        let mut c = VoxelCache::new(cfg, OccupancyParams::default());
        let mut ctl = AdaptiveController::new(Some(AdaptivePolicy {
            target_hit_rate: 0.9,
            max_buckets: 64,
            min_window: 16,
        }));
        // A wide working set that a 2-bucket cache cannot hold.
        for round in 0..6 {
            for i in 0..32u16 {
                c.insert(k(i, 0, 0), true, |_| None);
            }
            ctl.after_batch(&mut c);
            c.evict();
            let _ = round;
        }
        assert!(ctl.growths() >= 1, "controller never grew the cache");
        assert!(c.config().num_buckets() > 2);
        assert!(c.config().num_buckets() <= 64);
    }

    #[test]
    fn adaptive_controller_disabled_is_inert() {
        let cfg = CacheConfig::builder()
            .num_buckets(2)
            .tau(1)
            .build()
            .unwrap();
        let mut c = VoxelCache::new(cfg, OccupancyParams::default());
        let mut ctl = AdaptiveController::new(None);
        for i in 0..100u16 {
            c.insert(k(i, 0, 0), true, |_| None);
        }
        assert!(!ctl.after_batch(&mut c));
        assert_eq!(c.config().num_buckets(), 2);
    }

    #[test]
    fn event_recording_captures_hit_miss_evict() {
        use octocache_telemetry::EventSink;
        let sink = EventSink::new();
        let mut c = cache(1, 1);
        c.attach_events(sink.buffer(0));
        c.events_mut().unwrap().set_scan(3);
        c.insert(k(1, 0, 0), true, |_| None); // miss
        c.insert(k(1, 0, 0), true, |_| None); // hit
        c.events_mut().unwrap().set_scan(5);
        c.insert(k(2, 0, 0), true, |_| None); // miss, bucket now over-full
        c.evict(); // evicts k(1,0,0): 1 hit, born on scan 3
        c.events_mut().unwrap().drain();
        let log = sink.take();
        let kinds: Vec<EventKind> = log.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::CacheMiss,
                EventKind::CacheHit,
                EventKind::CacheMiss,
                EventKind::CacheEvict,
            ]
        );
        let evict = log.events[3];
        assert_eq!(evict.key, morton::encode(k(1, 0, 0)));
        assert_eq!(evict.hits, 1);
        assert_eq!(evict.value, 3, "evict carries insertion scan");
        assert_eq!(evict.scan, 5);
        assert_eq!(log.events[1].hits, 1, "hit carries accumulated count");
    }

    #[test]
    fn event_recording_never_changes_contents() {
        use octocache_telemetry::EventSink;
        let sink = EventSink::new();
        let mut plain = cache(4, 2);
        let mut recorded = cache(4, 2);
        recorded.attach_events(sink.buffer(0));
        let mut evicted_plain = Vec::new();
        let mut evicted_rec = Vec::new();
        for i in 0..64u16 {
            let key = k(i % 11, i % 7, i % 3);
            plain.insert(key, i % 2 == 0, |_| None);
            recorded.insert(key, i % 2 == 0, |_| None);
            if i % 16 == 15 {
                plain.evict_into(&mut evicted_plain);
                recorded.evict_into(&mut evicted_rec);
            }
        }
        assert_eq!(evicted_plain, evicted_rec);
        assert_eq!(
            plain.iter().collect::<Vec<_>>(),
            recorded.iter().collect::<Vec<_>>()
        );
        assert!(!sink.is_empty() || !recorded.events_mut().unwrap().is_empty());
    }

    #[test]
    fn adaptive_controller_respects_memory_cap() {
        let cfg = CacheConfig::builder()
            .num_buckets(4)
            .tau(1)
            .build()
            .unwrap();
        let mut c = VoxelCache::new(cfg, OccupancyParams::default());
        let mut ctl = AdaptiveController::new(Some(AdaptivePolicy {
            target_hit_rate: 1.0, // unreachable: always wants to grow
            max_buckets: 8,
            min_window: 8,
        }));
        for _ in 0..10 {
            for i in 0..64u16 {
                c.insert(k(i, i, i), true, |_| None);
            }
            ctl.after_batch(&mut c);
        }
        assert!(c.config().num_buckets() <= 8);
    }
}
