//! # OctoCache
//!
//! A reproduction of *OctoCache: Caching Voxels for Accelerating 3D Occupancy
//! Mapping in Autonomous Systems* (ASPLOS '25). OctoCache is a software
//! caching layer placed in front of an OctoMap occupancy octree:
//!
//! 1. **A flattened, table-based voxel cache** absorbs the highly duplicated
//!    voxel updates produced by ray tracing, turning most octree round trips
//!    into O(1) bucket probes (paper §4.2).
//! 2. **Morton-code indexing** arranges evicted voxels in an order that
//!    maximises octree insertion locality — provably optimal for the tree
//!    distance functional 𝓕(S) (paper §4.3, reproduced in [`locality`]).
//! 3. **A two-thread pipeline** moves the octree update off the critical
//!    path, overlapping it with ray tracing and cache eviction under a
//!    single octree mutex (paper §4.4).
//!
//! Queries remain **consistent** with vanilla OctoMap: the cache stores the
//! *accumulated* occupancy (seeded from the octree on a miss), hits are
//! served from the cache, and misses fall through to the octree.
//!
//! The main entry points are [`SerialOctoCache`] and [`ParallelOctoCache`];
//! both implement the [`MappingSystem`] trait shared with the plain OctoMap
//! baselines in [`pipeline`], so downstream code (the UAV simulator, the
//! benches) can swap mapping backends freely.
//!
//! # Quickstart
//!
//! ```
//! # use octocache::{CacheConfig, SerialOctoCache};
//! # use octocache::pipeline::MappingSystem;
//! # use octocache_geom::{Point3, VoxelGrid};
//! # use octocache_octomap::OccupancyParams;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let grid = VoxelGrid::new(0.1, 16)?;
//! let config = CacheConfig::builder().num_buckets(1 << 12).tau(4).build()?;
//! let mut map = SerialOctoCache::new(grid, OccupancyParams::default(), config);
//!
//! // Insert a scan: ray tracing -> cache -> (eviction -> octree).
//! let cloud = vec![Point3::new(2.0, 0.3, 0.1), Point3::new(2.0, 0.5, 0.1)];
//! map.insert_scan(Point3::ZERO, &cloud, 10.0)?;
//!
//! // Query through the cache with OctoMap-consistent results.
//! assert_eq!(map.is_occupied_at(Point3::new(2.0, 0.3, 0.1))?, Some(true));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
mod config;
pub mod durable;
pub mod engine;
pub mod fault;
pub mod locality;
pub mod parallel;
pub mod pipeline;
pub mod query;
pub mod routing;
pub mod serial;
pub mod sharded;
pub mod spsc;
pub mod supervisor;

pub use cache::{AdaptiveController, AdaptivePolicy, CacheStats, EvictedCell, VoxelCache};
pub use config::{
    BackoffPolicy, CacheConfig, CacheConfigBuilder, ConfigError, EvictionOrder, IndexPolicy,
};
pub use durable::{DurableError, DurableMap, DurableStats, IoFaultPlan, KillPoint, RecoveryReport};
pub use engine::{Engine, FlushTimes, ScanExecutor, ScanOutput};
pub use fault::{
    FaultCounters, FaultPlan, Integrity, IntegrityState, IntegrityTransition, PipelineError,
};
pub use parallel::{ParallelOctoCache, ShardView};
pub use pipeline::MappingSystem;
pub use query::{
    LiveMap, MapSnapshot, OccupancyView, PublishStats, QueryHandle, SnapshotPublisher,
};
pub use routing::OctantRouter;
pub use serial::SerialOctoCache;
pub use sharded::ShardedOctoMap;
pub use supervisor::{PressureLevel, RestartPolicy, ScanOutcome, ShedReason, SupervisorParams};
// The octree storage-layout selector is re-exported so consumers picking a
// layout through `CacheConfig` need only this crate.
pub use octocache_octomap::{ParseLayoutError, TreeLayout};
// Telemetry primitives live in `octocache-telemetry`; `PhaseTimes` is
// re-exported here because it predates that crate and every downstream
// consumer imports it from `octocache`.
pub use octocache_telemetry::{
    JsonlRecorder, MemoryRecorder, NullRecorder, PhaseHistograms, PhaseTimes, Recorder, ScanRecord,
    SharedRecorder,
};
