//! Property tests for the voxel-cache invariants that the N-worker
//! pipeline's correctness rests on:
//!
//! 1. τ-eviction is lossless — every accumulated update eventually reaches
//!    the eviction stream with exactly the accumulated value.
//! 2. `CacheStats::since`/`merge` form the algebra the telemetry layer
//!    assumes (associative merge, zero identity, since/merge inversion).
//! 3. Hash and Morton indexing agree on bucket membership: both place a
//!    key in exactly one in-range bucket, find it again, and account for
//!    every resident cell in the occupancy histogram.

use std::collections::HashMap;

use octocache::{CacheConfig, CacheStats, EvictedCell, IndexPolicy, VoxelCache};
use octocache_geom::VoxelKey;
use octocache_octomap::OccupancyParams;
use proptest::prelude::*;

/// Ops driving the eviction-loss property.
#[derive(Debug, Clone)]
enum Op {
    /// Offer an observation for key (x, y, z).
    Insert(u16, u16, u16, bool),
    /// Run a τ-eviction pass.
    Evict,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (0u16..20, 0u16..20, 0u16..20, any::<bool>())
            .prop_map(|(x, y, z, o)| Op::Insert(x, y, z, o)),
        1 => Just(Op::Evict),
    ]
}

/// An arbitrary stats snapshot with fields small enough that merged sums
/// never overflow.
fn arb_stats() -> impl Strategy<Value = CacheStats> {
    proptest::collection::vec(0u64..(1 << 30), 7..8).prop_map(|v| CacheStats {
        insertions: v[0],
        hits: v[1],
        misses: v[2],
        octree_seeds: v[3],
        evictions: v[4],
        query_hits: v[5],
        query_misses: v[6],
    })
}

fn merged(a: &CacheStats, b: &CacheStats) -> CacheStats {
    let mut m = *a;
    m.merge(b);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// τ-eviction never drops (or corrupts) an accumulated update: under
    /// any interleaving of insertions and eviction passes, the last evicted
    /// value of every voxel equals the flat model's accumulation, and
    /// nothing stays behind after `drain_all`.
    #[test]
    fn tau_eviction_is_lossless(
        ops in proptest::collection::vec(arb_op(), 1..300),
        tau in 1usize..5,
    ) {
        let params = OccupancyParams::default();
        let cfg = CacheConfig::builder()
            .num_buckets(16) // tiny: constant collision pressure
            .tau(tau)
            .build()
            .unwrap();
        let mut cache = VoxelCache::new(cfg, params);
        let mut model: HashMap<VoxelKey, f32> = HashMap::new();
        // The model octree: last value each voxel reached the eviction
        // stream with. Re-inserted voxels seed from here, exactly as the
        // pipelines seed misses from the real octree.
        let mut flushed: HashMap<VoxelKey, f32> = HashMap::new();
        let mut buf: Vec<EvictedCell> = Vec::new();

        for op in &ops {
            match *op {
                Op::Insert(x, y, z, occupied) => {
                    let key = VoxelKey::new(x, y, z);
                    let e = model.entry(key).or_insert(params.threshold);
                    *e = params.apply(*e, occupied);
                    cache.insert(key, occupied, |k| flushed.get(&k).copied());
                }
                Op::Evict => {
                    buf.clear();
                    cache.evict_into(&mut buf);
                    for cell in &buf {
                        flushed.insert(cell.key, cell.log_odds);
                    }
                }
            }
        }
        for cell in cache.drain_all() {
            flushed.insert(cell.key, cell.log_odds);
        }
        assert!(cache.is_empty());

        assert_eq!(flushed.len(), model.len());
        for (key, expected) in &model {
            let got = flushed.get(key).unwrap_or_else(|| panic!("{key} lost"));
            assert_eq!(
                got.to_bits(),
                expected.to_bits(),
                "{key}: flushed {got} != model {expected}"
            );
        }
    }

    /// `merge` is associative with `CacheStats::default()` as the zero.
    #[test]
    fn stats_merge_algebra(
        a in arb_stats(),
        b in arb_stats(),
        c in arb_stats(),
    ) {
        // Zero identity, both sides.
        assert_eq!(merged(&a, &CacheStats::default()), a);
        assert_eq!(merged(&CacheStats::default(), &a), a);
        // Associativity.
        assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
        // Commutativity (merge is a fieldwise sum).
        assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    /// `since` inverts `merge`: the delta of a merged snapshot over its
    /// base is the increment, and re-merging the delta restores the whole.
    #[test]
    fn stats_since_inverts_merge(
        base in arb_stats(),
        delta in arb_stats(),
    ) {
        let total = merged(&base, &delta);
        assert_eq!(total.since(&base), delta);
        assert_eq!(merged(&base, &total.since(&base)), total);
        // A snapshot's delta over itself is zero.
        assert_eq!(total.since(&total), CacheStats::default());
    }

    /// Hash and Morton indexing agree on bucket membership: under either
    /// policy every key lands in one in-range bucket, is found there again
    /// by `peek`/`bucket_index`, and the occupancy histogram accounts for
    /// every resident cell.
    #[test]
    fn indexing_policies_agree_on_membership(
        keys in proptest::collection::vec(
            (0u16..64, 0u16..64, 0u16..64).prop_map(|(x, y, z)| VoxelKey::new(x, y, z)),
            1..80,
        ),
        buckets_log2 in 4u32..9,
    ) {
        let params = OccupancyParams::default();
        for policy in [IndexPolicy::Hash, IndexPolicy::Morton] {
            let cfg = CacheConfig::builder()
                .num_buckets(1usize << buckets_log2)
                .tau(1 << 20) // effectively infinite: membership stays put
                .index_policy(policy)
                .build()
                .unwrap();
            let mut cache = VoxelCache::new(cfg, params);
            for key in &keys {
                cache.insert(*key, true, |_| None);
            }
            for key in &keys {
                let b = cache.bucket_index(*key);
                assert!(b < 1usize << buckets_log2, "{policy:?}: bucket {b} out of range");
                // bucket_index is a pure function of the key.
                assert_eq!(b, cache.bucket_index(*key), "{policy:?}: unstable index");
                assert!(cache.peek(*key).is_some(), "{policy:?}: {key} not found");
            }
            let distinct: std::collections::HashSet<VoxelKey> = keys.iter().copied().collect();
            assert_eq!(cache.len(), distinct.len(), "{policy:?}");
            // The histogram is indexed by occupancy count: summing
            // `count × buckets_with_that_count` must account for every
            // resident cell, and the bucket total must match `num_buckets`.
            let hist = cache.bucket_occupancy_histogram();
            let cells: usize = hist.iter().enumerate().map(|(c, n)| c * n).sum();
            assert_eq!(cells, cache.len(), "{policy:?}");
            assert!(
                hist.iter().sum::<usize>() <= 1usize << buckets_log2,
                "{policy:?}: more buckets than configured"
            );
        }
    }
}
