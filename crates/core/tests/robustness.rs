//! Invalid-input robustness properties: no backend may panic, and a
//! rejected scan must be transactional (no partial application).
//!
//! Property-tested contract, shared by every `MappingSystem` backend:
//!
//! * A non-finite or out-of-grid **origin** makes `insert_scan` return
//!   `Err(PipelineError::Geom(_))` and leaves the map exactly as it was —
//!   the failed scan applies nothing.
//! * Non-finite **cloud points** are skipped (the scan still succeeds),
//!   and out-of-grid endpoints are clamped — so every backend produces the
//!   identical map from the same dirty cloud.

use octocache::pipeline::{MappingSystem, OctoMapSystem, RayTracer};
use octocache::{CacheConfig, ParallelOctoCache, PipelineError, SerialOctoCache, ShardedOctoMap};
use octocache_geom::{Point3, VoxelGrid};
use octocache_octomap::{compare, OccupancyOcTree, OccupancyParams};
use proptest::prelude::*;

fn grid() -> VoxelGrid {
    VoxelGrid::new(0.5, 8).unwrap()
}

/// Small cache so the pipelines exercise eviction even in short runs.
fn cache() -> CacheConfig {
    CacheConfig::builder()
        .num_buckets(1 << 6)
        .tau(1)
        .build()
        .unwrap()
}

/// Every backend under test. Parallel runs at 1 and 4 workers so both the
/// single-queue and the octant-sharded paths face the dirty input.
fn backends() -> Vec<(&'static str, Box<dyn MappingSystem>)> {
    let params = OccupancyParams::default();
    vec![
        ("octomap", Box::new(OctoMapSystem::new(grid(), params))),
        (
            "serial",
            Box::new(SerialOctoCache::new(grid(), params, cache())),
        ),
        (
            "sharded-x4",
            Box::new(ShardedOctoMap::new(grid(), params, 4)),
        ),
        (
            "parallel-x1",
            Box::new(ParallelOctoCache::with_workers(
                grid(),
                params,
                cache(),
                RayTracer::Standard,
                1,
            )),
        ),
        (
            "parallel-x4",
            Box::new(ParallelOctoCache::with_workers(
                grid(),
                params,
                cache(),
                RayTracer::Standard,
                4,
            )),
        ),
    ]
}

/// A valid scan that populates several octants.
fn valid_scan(offset: f64) -> (Point3, Vec<Point3>) {
    let cloud = (0..40)
        .map(|i| {
            let a = i as f64 * 0.53 + offset;
            Point3::new(
                10.0 * a.sin(),
                10.0 * a.cos(),
                if i % 2 == 0 { 3.0 } else { -3.0 },
            )
        })
        .collect();
    (Point3::new(0.0, 0.0, offset.fract()), cloud)
}

/// An invalid origin: non-finite or far outside the mapped cube.
fn arb_bad_origin() -> impl Strategy<Value = Point3> {
    prop_oneof![
        Just(Point3::new(f64::NAN, 0.0, 0.0)),
        Just(Point3::new(0.0, f64::INFINITY, 0.0)),
        Just(Point3::new(0.0, 0.0, f64::NEG_INFINITY)),
        (200.0f64..1e9, -1e9f64..1e9).prop_map(|(x, y)| Point3::new(x, y, 0.0)),
        (-1e9f64..-200.0).prop_map(|z| Point3::new(0.0, 0.0, z)),
    ]
}

/// A cloud mixing valid endpoints with NaN/inf and out-of-grid points.
fn arb_dirty_cloud() -> impl Strategy<Value = Vec<Point3>> {
    let point = prop_oneof![
        4 => (-15.0f64..15.0, -15.0f64..15.0, -6.0f64..6.0)
            .prop_map(|(x, y, z)| Point3::new(x, y, z)),
        1 => Just(Point3::new(f64::NAN, 1.0, 1.0)),
        1 => Just(Point3::new(1.0, f64::INFINITY, 1.0)),
        1 => (-1e6f64..1e6, -1e6f64..1e6).prop_map(|(x, y)| Point3::new(x, y, 1e7)),
    ];
    proptest::collection::vec(point, 1..50)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A bad origin is a typed error on every backend, and the rejected
    /// scan leaves the map untouched (compare against a twin that never
    /// saw the bad scan).
    #[test]
    fn bad_origin_is_err_and_applies_nothing(bad_origin in arb_bad_origin()) {
        for ((label, dirty), (_, clean)) in backends().into_iter().zip(backends()) {
            let mut dirty = dirty;
            let mut clean = clean;
            let (o1, c1) = valid_scan(0.0);
            let (o2, c2) = valid_scan(1.7);
            dirty.insert_scan(o1, &c1, 40.0).unwrap();
            clean.insert_scan(o1, &c1, 40.0).unwrap();

            let err = dirty.insert_scan(bad_origin, &c2, 40.0);
            prop_assert!(
                matches!(err, Err(PipelineError::Geom(_))),
                "{label}: {bad_origin:?} gave {err:?}"
            );

            dirty.insert_scan(o2, &c2, 40.0).unwrap();
            clean.insert_scan(o2, &c2, 40.0).unwrap();
            dirty.finish();
            clean.finish();
            let a = dirty.take_tree();
            let b = clean.take_tree();
            let d = compare::diff(&a, &b, 0.0);
            prop_assert!(
                d.is_identical(),
                "{label}: rejected scan left {} value / {} coverage mismatches",
                d.value_mismatches,
                d.coverage_mismatches
            );
        }
    }

    /// Dirty cloud points (NaN/inf skipped, out-of-grid clamped) never
    /// panic and every backend produces the identical map.
    #[test]
    fn dirty_clouds_map_identically_on_every_backend(cloud in arb_dirty_cloud()) {
        let origin = Point3::new(0.5, -0.5, 0.25);
        let mut reference: Option<OccupancyOcTree> = None;
        for (label, mut backend) in backends() {
            backend.insert_scan(origin, &cloud, 40.0).unwrap();
            backend.finish();
            let tree = backend.take_tree();
            match &reference {
                None => reference = Some(tree),
                Some(r) => {
                    let d = compare::diff(r, &tree, 1e-4);
                    prop_assert!(
                        d.is_identical(),
                        "{label}: {} value / {} coverage mismatches vs octomap",
                        d.value_mismatches,
                        d.coverage_mismatches
                    );
                }
            }
        }
    }
}
