//! Model-based property tests: the voxel cache against a flat reference
//! model, and the parallel pipeline against the serial one under random
//! workloads.

use std::collections::HashMap;

use octocache::pipeline::MappingSystem;
use octocache::{CacheConfig, ParallelOctoCache, SerialOctoCache, VoxelCache};
use octocache_geom::{Point3, VoxelGrid, VoxelKey};
use octocache_octomap::{OccupancyOcTree, OccupancyParams};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Offer an observation for key (x, y, z).
    Insert(u16, u16, u16, bool),
    /// Query a key.
    Get(u16, u16, u16),
    /// Run an eviction pass.
    Evict,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0u16..12, 0u16..12, 0u16..12, any::<bool>())
            .prop_map(|(x, y, z, o)| Op::Insert(x, y, z, o)),
        2 => (0u16..12, 0u16..12, 0u16..12).prop_map(|(x, y, z)| Op::Get(x, y, z)),
        1 => Just(Op::Evict),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The cache + backing tree always agree with a flat per-voxel model
    /// applying the paper's update rule, no matter how insertions, queries
    /// and evictions interleave.
    #[test]
    fn cache_plus_tree_matches_flat_model(
        ops in proptest::collection::vec(arb_op(), 1..250),
        tau in 1usize..4,
    ) {
        let params = OccupancyParams::default();
        let cfg = CacheConfig::builder()
            .num_buckets(16) // tiny: force collisions and evictions
            .tau(tau)
            .build()
            .unwrap();
        let mut cache = VoxelCache::new(cfg, params);
        let grid = VoxelGrid::new(1.0, 4).unwrap();
        let mut tree = OccupancyOcTree::new(grid, params);
        let mut model: HashMap<VoxelKey, f32> = HashMap::new();

        for op in &ops {
            match *op {
                Op::Insert(x, y, z, occupied) => {
                    let key = VoxelKey::new(x, y, z);
                    let e = model.entry(key).or_insert(params.threshold);
                    *e = params.apply(*e, occupied);
                    cache.insert(key, occupied, |k| tree.search(k));
                }
                Op::Get(x, y, z) => {
                    let key = VoxelKey::new(x, y, z);
                    let got = cache.get(key).or_else(|| tree.search(key));
                    match (got, model.get(&key)) {
                        (None, None) => {}
                        (Some(a), Some(&b)) => {
                            prop_assert!((a - b).abs() < 1e-5, "{key}: {a} vs {b}")
                        }
                        other => prop_assert!(false, "{key}: {other:?}"),
                    }
                }
                Op::Evict => {
                    for cell in cache.evict() {
                        tree.set_node_log_odds(cell.key, cell.log_odds);
                    }
                }
            }
        }
        // Final flush: everything must land in the tree with model values.
        for cell in cache.drain_all() {
            tree.set_node_log_odds(cell.key, cell.log_odds);
        }
        for (key, &want) in &model {
            let got = tree.search(*key);
            prop_assert!(got.is_some(), "{key} missing from tree");
            prop_assert!((got.unwrap() - want).abs() < 1e-5);
        }
    }

    /// Bucket-size invariant: after any eviction pass, no bucket exceeds τ
    /// (the paper's memory-bound guarantee, §4.2.2).
    #[test]
    fn eviction_restores_tau_bound(
        keys in proptest::collection::vec((0u16..64, 0u16..64, 0u16..64), 1..300),
        tau in 1usize..5,
    ) {
        let cfg = CacheConfig::builder().num_buckets(8).tau(tau).build().unwrap();
        let mut cache = VoxelCache::new(cfg, OccupancyParams::default());
        for &(x, y, z) in &keys {
            cache.insert(VoxelKey::new(x, y, z), true, |_| None);
        }
        cache.evict();
        let hist = cache.bucket_occupancy_histogram();
        for (occupancy, count) in hist.iter().enumerate() {
            if *count > 0 {
                prop_assert!(occupancy <= tau, "bucket holds {occupancy} > tau {tau}");
            }
        }
        prop_assert!(cache.len() <= cfg.capacity_after_eviction());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))] // threads are costly

    /// Parallel and serial pipelines converge to identical maps for random
    /// scan workloads.
    #[test]
    fn parallel_converges_to_serial(
        scans in proptest::collection::vec(
            proptest::collection::vec(
                (-10.0f64..10.0, -10.0f64..10.0, -3.0f64..3.0),
                5..40
            ),
            1..6
        ),
        seed in 0u64..1000,
    ) {
        let grid = VoxelGrid::new(0.5, 8).unwrap();
        let params = OccupancyParams::default();
        let cfg = CacheConfig::builder().num_buckets(64).tau(2).build().unwrap();
        let mut serial = SerialOctoCache::new(grid, params, cfg);
        let mut parallel = ParallelOctoCache::new(grid, params, cfg);

        for (i, cloud) in scans.iter().enumerate() {
            let origin = Point3::new(
                (seed % 5) as f64 * 0.1,
                (i as f64) * 0.2 - 0.5,
                0.0,
            );
            let points: Vec<Point3> = cloud
                .iter()
                .map(|&(x, y, z)| Point3::new(x, y, z))
                .collect();
            serial.insert_scan(origin, &points, 15.0).unwrap();
            parallel.insert_scan(origin, &points, 15.0).unwrap();
        }
        let t_ser = serial.into_tree();
        let t_par = parallel.into_tree();
        prop_assert_eq!(t_ser.num_leaves(), t_par.num_leaves());
        for leaf in t_ser.leaves() {
            let got = t_par.search(leaf.key);
            prop_assert!(got.is_some(), "{} missing in parallel tree", leaf.key);
            prop_assert!(
                (got.unwrap() - leaf.log_odds).abs() < 1e-5,
                "{}: {} vs {}",
                leaf.key,
                got.unwrap(),
                leaf.log_odds
            );
        }
    }
}
