//! Concurrent snapshot stress suite: reader threads hammer a
//! [`QueryHandle`] while the owning thread keeps mapping, and every
//! snapshot any reader ever observes must be exactly one scan boundary —
//! never a torn blend of two scans.
//!
//! The mechanism: the writer records a per-epoch leaf-checksum table as it
//! publishes (epoch k ↦ digest of the map after scan k). Readers
//! concurrently grab snapshots, digest them twice (immutability), and log
//! `(epoch, checksum)` observations. After the run, every observation must
//! match the writer's table, and each reader's epoch sequence must be
//! monotone — snapshots never go backwards.
//!
//! With `--features fault-injection`, the same harness runs against a
//! parallel pipeline whose worker is killed mid-run: the scan may surface
//! a typed error, but the handle must keep serving consistent, untorn
//! snapshots throughout — a dead worker must never wedge or corrupt the
//! read path.

mod common;

use common::{cache, grid, scenario, Scan};
use octocache::pipeline::{MappingSystem, RayTracer};
use octocache::{ParallelOctoCache, QueryHandle, SerialOctoCache};
use octocache_geom::VoxelKey;
use octocache_octomap::OccupancyParams;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;

const READERS: usize = 4;

/// A reader's log: every `(epoch, checksum)` it observed.
type Observations = Vec<(u64, u64)>;

/// Spins on the handle until `stop`, digesting every snapshot twice and
/// spot-checking that batch answers match singles on the same snapshot.
fn reader_loop(handle: QueryHandle, stop: &AtomicBool) -> Observations {
    let probes: Vec<VoxelKey> = (0..8)
        .map(|i| VoxelKey::new(120 + i * 3, 128, 126 + i))
        .collect();
    let mut seen = Vec::new();
    let mut last_epoch = 0u64;
    while !stop.load(Ordering::Acquire) {
        let snap = handle.snapshot();
        let epoch = snap.epoch();
        assert!(
            epoch >= last_epoch,
            "snapshot went backwards: {epoch} after {last_epoch}"
        );
        last_epoch = epoch;
        let c1 = snap.checksum();
        let c2 = snap.checksum();
        assert_eq!(c1, c2, "snapshot mutated between two reads (epoch {epoch})");
        let (batch, _) = snap.batch_occupancy(&probes);
        for (i, &k) in probes.iter().enumerate() {
            assert_eq!(
                batch[i].map(f32::to_bits),
                snap.occupancy(k).map(f32::to_bits),
                "batch answer diverged from single on one snapshot (epoch {epoch})"
            );
        }
        seen.push((epoch, c1));
    }
    // One final read after the writer stopped: the last boundary persists.
    let snap = handle.snapshot();
    seen.push((snap.epoch(), snap.checksum()));
    seen
}

/// Drives `backend` through `scans` with `READERS` threads hammering the
/// handle, returning (writer's epoch→checksum table, reader observations,
/// scan errors).
fn hammer(
    backend: &mut dyn MappingSystem,
    scans: &[Scan],
) -> (HashMap<u64, u64>, Vec<Observations>, usize) {
    let handle = backend.query_handle();
    let mut table = HashMap::new();
    {
        let snap = handle.snapshot();
        table.insert(snap.epoch(), snap.checksum());
    }
    let stop = AtomicBool::new(false);
    let mut errors = 0usize;
    let logs = thread::scope(|scope| {
        let readers: Vec<_> = (0..READERS)
            .map(|_| {
                let h = handle.clone();
                let stop = &stop;
                scope.spawn(move || reader_loop(h, stop))
            })
            .collect();
        for scan in scans {
            if backend
                .insert_scan(scan.origin, &scan.points, 40.0)
                .is_err()
            {
                errors += 1;
            }
            let snap = handle.snapshot();
            table.insert(snap.epoch(), snap.checksum());
        }
        stop.store(true, Ordering::Release);
        readers
            .into_iter()
            .map(|r| r.join().expect("reader panicked"))
            .collect::<Vec<_>>()
    });
    (table, logs, errors)
}

/// Every observation must be in the writer's table, with the matching
/// digest; collectively the readers must have seen the mapping advance.
fn assert_boundary_consistent(
    label: &str,
    table: &HashMap<u64, u64>,
    logs: &[Observations],
    final_epoch: u64,
) {
    let mut max_seen = 0u64;
    for (reader, log) in logs.iter().enumerate() {
        assert!(
            !log.is_empty(),
            "{label}: reader {reader} never observed a snapshot"
        );
        for &(epoch, checksum) in log {
            let expected = table.get(&epoch).unwrap_or_else(|| {
                panic!("{label}: reader {reader} saw unpublished epoch {epoch}")
            });
            assert_eq!(
                checksum, *expected,
                "{label}: reader {reader} observed a torn snapshot at epoch {epoch}"
            );
            max_seen = max_seen.max(epoch);
        }
    }
    assert_eq!(
        max_seen, final_epoch,
        "{label}: no reader ever saw the final published boundary"
    );
}

#[test]
fn readers_never_observe_torn_snapshots_on_serial_backend() {
    let scans = scenario(1009);
    let mut backend = SerialOctoCache::new(grid(), OccupancyParams::default(), cache());
    let (table, logs, errors) = hammer(&mut backend, &scans);
    assert_eq!(errors, 0, "serial backend errored");
    assert_boundary_consistent("serial", &table, &logs, scans.len() as u64);
}

#[test]
fn readers_never_observe_torn_snapshots_on_parallel_backend() {
    for n in [2usize, 4] {
        let scans = scenario(2003 + n as u64);
        let mut backend = ParallelOctoCache::with_workers(
            grid(),
            OccupancyParams::default(),
            cache(),
            RayTracer::Standard,
            n,
        );
        let (table, logs, errors) = hammer(&mut backend, &scans);
        assert_eq!(errors, 0, "parallel-x{n} backend errored");
        assert_boundary_consistent(&format!("parallel-x{n}"), &table, &logs, scans.len() as u64);
    }
}

/// A killed worker must not wedge the read path or publish a torn map:
/// scans may surface typed errors and the map may be degraded, but every
/// published epoch still has exactly one digest and the handle keeps
/// serving after the fault.
#[cfg(feature = "fault-injection")]
#[test]
fn killed_worker_does_not_wedge_or_corrupt_snapshots() {
    use octocache::{CacheConfig, FaultPlan};
    use std::time::Duration;

    let scans = scenario(3301);
    for batch in [0u64, 2] {
        let plan = FaultPlan::from_spec(&format!("kill:1@{batch}")).expect("valid spec");
        let mut b = CacheConfig::builder();
        b.num_buckets(1 << 7)
            .tau(2)
            .stall_timeout(Duration::from_secs(2))
            .fault_plan(plan);
        let config = b.build().unwrap();
        let mut backend = ParallelOctoCache::with_workers(
            grid(),
            OccupancyParams::default(),
            config,
            RayTracer::Standard,
            4,
        );
        let (table, logs, _errors) = hammer(&mut backend, &scans);
        // The kill may or may not surface depending on whether the target
        // batch is reached; either way, the consistency contract holds.
        assert_boundary_consistent(
            &format!("parallel-x4 kill:1@{batch}"),
            &table,
            &logs,
            scans.len() as u64,
        );
        // The handle still answers after the fault and the final map is
        // still queryable through it.
        let handle = backend.query_handle();
        let snap = handle.snapshot();
        assert_eq!(snap.epoch(), scans.len() as u64);
        let _ = snap.occupancy(VoxelKey::new(128, 128, 128));
    }
}
