//! Integration tests for the telemetry layer wired through the backends.
//!
//! The key invariant: attaching a recorder is pure observation — the maps a
//! backend produces are bit-identical with and without one (the
//! `NullRecorder`-equivalence requirement), and the per-scan records agree
//! with the `ScanReport`s the caller already sees.

use octocache::pipeline::{MappingSystem, OctoMapSystem};
use octocache::{
    CacheConfig, CacheStats, NullRecorder, ParallelOctoCache, SerialOctoCache, ShardedOctoMap,
    SharedRecorder,
};
use octocache_geom::{Point3, VoxelGrid};
use octocache_octomap::{compare, OccupancyParams};

fn grid() -> VoxelGrid {
    VoxelGrid::new(0.5, 8).unwrap()
}

fn cache_config() -> CacheConfig {
    CacheConfig::builder()
        .num_buckets(1 << 8)
        .tau(2)
        .build()
        .unwrap()
}

/// A deterministic multi-scan workload with duplicated observations.
fn scans() -> Vec<(Point3, Vec<Point3>)> {
    (0..6)
        .map(|s| {
            let origin = Point3::new(0.0, s as f64 * 0.25, 0.0);
            let cloud = (0..50)
                .map(|i| Point3::new(6.0, -1.5 + i as f64 * 0.06 + s as f64 * 0.02, 0.25))
                .collect();
            (origin, cloud)
        })
        .collect()
}

/// Runs the workload and returns the completed tree.
fn build<M: MappingSystem>(mut map: M, recorded: bool) -> octocache_octomap::OccupancyOcTree
where
    Box<M>: MappingSystem,
{
    if recorded {
        map.set_recorder(Box::new(NullRecorder));
    }
    for (origin, cloud) in scans() {
        map.insert_scan(origin, &cloud, 30.0).unwrap();
    }
    Box::new(map).take_tree()
}

#[test]
fn null_recorder_equivalence_all_backends() {
    let grid = grid();
    let params = OccupancyParams::default();
    let plain: Vec<Box<dyn MappingSystem>> = vec![
        Box::new(OctoMapSystem::new(grid, params)),
        Box::new(SerialOctoCache::new(grid, params, cache_config())),
        Box::new(ParallelOctoCache::new(grid, params, cache_config())),
        Box::new(ShardedOctoMap::new(grid, params, 4)),
    ];
    let recorded: Vec<Box<dyn MappingSystem>> = vec![
        Box::new(OctoMapSystem::new(grid, params)),
        Box::new(SerialOctoCache::new(grid, params, cache_config())),
        Box::new(ParallelOctoCache::new(grid, params, cache_config())),
        Box::new(ShardedOctoMap::new(grid, params, 4)),
    ];
    for (a, b) in plain.into_iter().zip(recorded) {
        let name = a.name();
        let tree_plain = build(a, false);
        let tree_recorded = build(b, true);
        let d = compare::diff(&tree_plain, &tree_recorded, 1e-6);
        assert!(
            d.is_identical(),
            "{name}: maps diverge with a recorder attached: {} value / {} coverage mismatches",
            d.value_mismatches,
            d.coverage_mismatches
        );
    }
}

#[test]
fn scan_records_agree_with_scan_reports() {
    let mut map = SerialOctoCache::new(grid(), OccupancyParams::default(), cache_config());
    let recorder = SharedRecorder::new();
    map.set_recorder(Box::new(recorder.clone()));

    let mut reports = Vec::new();
    for (origin, cloud) in scans() {
        reports.push(map.insert_scan(origin, &cloud, 30.0).unwrap());
    }
    let records = recorder.records();
    assert_eq!(records.len(), reports.len());
    for (i, (record, report)) in records.iter().zip(&reports).enumerate() {
        assert_eq!(record.seq, i as u64);
        assert_eq!(record.backend, "octocache-serial");
        assert_eq!(record.observations, report.observations as u64);
        assert_eq!(record.cache_hits, report.cache_hits);
        assert_eq!(record.times, report.times);
        assert!(record.cache_insertions >= record.cache_hits);
        assert!(record.octree_leaf_updates > 0 || record.cache_evictions == 0);
    }
    // The trait-level counters match the cache's own view.
    let via_trait = MappingSystem::cache_stats(&map).unwrap();
    assert_eq!(&via_trait, map.cache_stats());
}

#[test]
fn parallel_records_queue_depth_and_worker_time() {
    // Tiny tau: every scan evicts, so the queue carries chunks.
    let cfg = CacheConfig::builder()
        .num_buckets(1 << 6)
        .tau(1)
        .build()
        .unwrap();
    let mut map = ParallelOctoCache::new(grid(), OccupancyParams::default(), cfg);
    let recorder = SharedRecorder::new();
    map.set_recorder(Box::new(recorder.clone()));
    for (origin, cloud) in scans() {
        map.insert_scan(origin, &cloud, 30.0).unwrap();
    }
    map.finish();
    let records = recorder.records();
    assert!(records.iter().any(|r| r.queue_depth_enqueue > 0));
    // Worker time rides on the scans that waited for it, and the totals
    // cover it (the dequeue+octree_update of every applied batch).
    let summed: std::time::Duration = records.iter().map(|r| r.times.octree_update).sum();
    assert!(map.phase_times().octree_update >= summed);
}

#[test]
fn phase_histograms_count_scans() {
    let mut map = SerialOctoCache::new(grid(), OccupancyParams::default(), cache_config());
    let n = scans().len() as u64;
    for (origin, cloud) in scans() {
        map.insert_scan(origin, &cloud, 30.0).unwrap();
    }
    let hists = map
        .phase_histograms()
        .expect("serial backend has histograms");
    let ray = hists.get(octocache_telemetry::Phase::RayTracing);
    assert_eq!(ray.count(), n);
    assert!(ray.p50() <= ray.p99());
    assert!(ray.p99() <= ray.max());
}

#[test]
fn cache_stats_since_and_merge() {
    let base = CacheStats {
        insertions: 100,
        hits: 60,
        misses: 40,
        octree_seeds: 10,
        evictions: 20,
        query_hits: 5,
        query_misses: 1,
    };
    let mut later = base;
    later.insertions += 50;
    later.hits += 30;
    later.misses += 20;
    later.evictions += 7;

    let delta = later.since(&base);
    assert_eq!(delta.insertions, 50);
    assert_eq!(delta.hits, 30);
    assert_eq!(delta.misses, 20);
    assert_eq!(delta.evictions, 7);
    assert_eq!(delta.octree_seeds, 0);

    // since() then merge() restores the later snapshot.
    let mut rebuilt = base;
    rebuilt.merge(&delta);
    assert_eq!(rebuilt, later);

    // A reset between snapshots saturates to zero instead of wrapping.
    let after_reset = CacheStats::default().since(&base);
    assert_eq!(after_reset, CacheStats::default());
}
