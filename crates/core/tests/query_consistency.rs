//! Snapshot query consistency battery: a published [`MapSnapshot`] must
//! answer every query kind exactly like the locked live tree it was taken
//! from, on every backend, in every storage layout, at every worker count.
//!
//! Three angles of attack, all over the shared seeded scenario generator
//! (`tests/common`):
//!
//! 1. **Scan-boundary tracking** — after every `insert_scan`, the freshly
//!    published snapshot answers point lookups bit-identically to the
//!    backend's own (locked) `occupancy()` path.
//! 2. **Full query-kind equality** — after the final scan, the snapshot's
//!    `occupancy` / `is_occupied` / `is_occupied_at` / `cast_ray` /
//!    `search_at_level` / box queries / `batch_occupancy` all match the
//!    flushed tree returned by `take_tree` query-for-query.
//! 3. **Cross-backend agreement** — the snapshot answer set (and the leaf
//!    checksum) is bit-identical across all seven backends × both layouts,
//!    so a reader can switch backends without observing any difference.
//!
//! `OCTO_TEST_ITERS` scales the scenario count, as in the differential
//! suite.

mod common;

use common::{backends_with, grid, num_scenarios, scenario, Scan};
use octocache::pipeline::MappingSystem;
use octocache::{MapSnapshot, TreeLayout};
use octocache_geom::{Aabb, Point3, VoxelKey};
use octocache_octomap::query as tree_query;
use octocache_octomap::{LeafEntry, OccupancyOcTree};
use std::sync::Arc;

fn layouts() -> [TreeLayout; 2] {
    [TreeLayout::Pointer, TreeLayout::Arena]
}

/// Occupancy options compared bit-for-bit: `Some(0.0)` vs `Some(-0.0)` or
/// NaN payload drift would slip through a float `==`.
fn bits(o: Option<f32>) -> Option<u32> {
    o.map(f32::to_bits)
}

/// A deterministic probe set touching hit voxels, free-space voxels along
/// the rays, and unknown space: every scan origin and every 7th endpoint,
/// each with a one-voxel neighbour offset.
fn probe_keys(scans: &[Scan]) -> Vec<VoxelKey> {
    let g = grid();
    let mut keys = Vec::new();
    let mut push = |p: Point3| {
        if let Ok(k) = g.key_of(p) {
            keys.push(k);
            keys.push(VoxelKey::new(k.x.wrapping_add(1), k.y, k.z.wrapping_sub(1)));
        }
    };
    for scan in scans {
        push(scan.origin);
        for p in scan.points.iter().step_by(7) {
            push(*p);
            // Midpoint of the ray: free space the integrator cleared.
            push(Point3::new(
                (scan.origin.x + p.x) * 0.5,
                (scan.origin.y + p.y) * 0.5,
                (scan.origin.z + p.z) * 0.5,
            ));
        }
    }
    // Far corners that no ray reaches: the unknown-space answer.
    keys.push(VoxelKey::new(1, 1, 1));
    keys.push(VoxelKey::new(250, 250, 250));
    keys
}

/// A deterministic fan of ray directions (azimuth sweep at three pitches).
fn ray_fan() -> Vec<Point3> {
    let mut dirs = Vec::new();
    for pitch in [-0.3f64, 0.0, 0.3] {
        for i in 0..12 {
            let az = i as f64 * std::f64::consts::TAU / 12.0;
            dirs.push(Point3::new(
                az.cos() * pitch.cos(),
                az.sin() * pitch.cos(),
                pitch.sin(),
            ));
        }
    }
    dirs
}

/// Query boxes around the trajectory: tight, medium, and scene-scale.
fn probe_boxes(scans: &[Scan]) -> Vec<Aabb> {
    let mut boxes = Vec::new();
    for scan in scans.iter().step_by(4) {
        boxes.push(Aabb::from_center_size(
            scan.origin,
            Point3::new(2.0, 2.0, 2.0),
        ));
        boxes.push(Aabb::from_center_size(
            scan.origin,
            Point3::new(12.0, 12.0, 6.0),
        ));
    }
    boxes.push(Aabb::new(
        Point3::new(-20.0, -20.0, -4.0),
        Point3::new(20.0, 20.0, 4.0),
    ));
    boxes
}

/// Leaf lists compared as sorted multisets: construction order of the
/// snapshot tree (merge vs clone-and-overlay) must not leak into results.
fn sorted_leaves(mut leaves: Vec<LeafEntry>) -> Vec<(VoxelKey, u8, u32)> {
    leaves.sort_by_key(|l| (l.key, l.level));
    leaves
        .into_iter()
        .map(|l| (l.key, l.level, l.log_odds.to_bits()))
        .collect()
}

/// Angle 1: after every scan the published snapshot equals the live locked
/// map at that scan boundary, for every backend × layout.
#[test]
fn snapshot_tracks_live_map_at_every_scan_boundary() {
    for seed in 0..num_scenarios() {
        let scans = scenario(seed * 3571 + 5);
        let probes = probe_keys(&scans);
        for layout in layouts() {
            for (label, mut backend) in backends_with(layout) {
                let handle = backend.query_handle();
                assert_eq!(handle.epoch(), 0, "{label}: unarmed handle not at epoch 0");
                for (i, scan) in scans.iter().enumerate() {
                    backend
                        .insert_scan(scan.origin, &scan.points, 40.0)
                        .expect("scan within grid");
                    let snap = handle.snapshot();
                    assert_eq!(
                        snap.scans(),
                        i as u64 + 1,
                        "seed {seed}, {label} ({layout:?}): snapshot scan count lags"
                    );
                    assert_eq!(
                        snap.epoch(),
                        i as u64 + 1,
                        "seed {seed}, {label} ({layout:?}): epoch not bumped per scan"
                    );
                    for &k in &probes {
                        assert_eq!(
                            bits(snap.occupancy(k)),
                            bits(backend.occupancy(k)),
                            "seed {seed}, {label} ({layout:?}), scan {i}, key {k:?}: \
                             snapshot diverges from locked read"
                        );
                    }
                }
            }
        }
    }
}

/// Runs all scans through a backend and returns the final snapshot plus the
/// flushed tree, so query kinds can be compared one-for-one.
fn final_snapshot_and_tree(
    mut backend: Box<dyn MappingSystem>,
    scans: &[Scan],
) -> (Arc<MapSnapshot>, OccupancyOcTree) {
    // Arm the publisher first so every scan republishes.
    let handle = backend.query_handle();
    for scan in scans {
        backend
            .insert_scan(scan.origin, &scan.points, 40.0)
            .expect("scan within grid");
    }
    let snap = handle.snapshot();
    backend.finish();
    (snap, backend.take_tree())
}

/// Angle 2: every query kind the snapshot answers matches the flushed
/// tree's own query functions, query-for-query and bit-for-bit.
#[test]
fn every_query_kind_matches_flushed_tree() {
    for seed in 0..num_scenarios() {
        let scans = scenario(seed * 9173 + 11);
        let probes = probe_keys(&scans);
        let boxes = probe_boxes(&scans);
        let fan = ray_fan();
        let origin = scans.last().expect("scenario non-empty").origin;
        for layout in layouts() {
            for (label, backend) in backends_with(layout) {
                let (snap, tree) = final_snapshot_and_tree(backend, &scans);
                let ctx = format!("seed {seed}, {label} ({layout:?})");

                for &k in &probes {
                    assert_eq!(
                        bits(snap.occupancy(k)),
                        bits(tree.search(k)),
                        "{ctx}: occupancy {k:?}"
                    );
                    assert_eq!(
                        snap.is_occupied(k),
                        tree.is_occupied(k),
                        "{ctx}: is_occupied {k:?}"
                    );
                    for level in [1u8, 2, 3] {
                        assert_eq!(
                            bits(snap.search_at_level(k, level)),
                            bits(tree_query::search_at_level(&tree, k, level)),
                            "{ctx}: search_at_level {k:?} L{level}"
                        );
                    }
                }

                for scan in scans.iter().step_by(3) {
                    for p in scan.points.iter().step_by(11) {
                        assert_eq!(
                            snap.is_occupied_at(*p).expect("point in grid"),
                            tree.is_occupied_at(*p).expect("point in grid"),
                            "{ctx}: is_occupied_at {p:?}"
                        );
                    }
                }

                for dir in &fan {
                    for ignore_unknown in [false, true] {
                        let a = snap.cast_ray(origin, *dir, 25.0, ignore_unknown);
                        let b = tree_query::cast_ray(&tree, origin, *dir, 25.0, ignore_unknown);
                        assert_eq!(a, b, "{ctx}: cast_ray dir {dir:?} iu={ignore_unknown}");
                    }
                }

                for b in &boxes {
                    assert_eq!(
                        snap.any_occupied_in_box(b).expect("box in grid"),
                        tree_query::any_occupied_in_box(&tree, b).expect("box in grid"),
                        "{ctx}: any_occupied_in_box {b:?}"
                    );
                    assert_eq!(
                        sorted_leaves(snap.leaves_in_box(b).expect("box in grid")),
                        sorted_leaves(tree_query::leaves_in_box(&tree, b).expect("box in grid")),
                        "{ctx}: leaves_in_box {b:?}"
                    );
                }

                let (batch, stats) = snap.batch_occupancy(&probes);
                assert_eq!(stats.queries, probes.len() as u64, "{ctx}: batch count");
                for (i, &k) in probes.iter().enumerate() {
                    assert_eq!(
                        bits(batch[i]),
                        bits(tree.search(k)),
                        "{ctx}: batch_occupancy[{i}] for {k:?}"
                    );
                }
            }
        }
    }
}

/// Angle 3: the snapshot answer set is bit-identical across all backends ×
/// layouts — including the structure-independent leaf checksum — so readers
/// observe one map, not seven.
#[test]
fn snapshot_answers_agree_across_backends_and_layouts() {
    for seed in 0..num_scenarios() {
        let scans = scenario(seed * 4099 + 3);
        let probes = probe_keys(&scans);
        let fan = ray_fan();
        let origin = scans[0].origin;

        // (answers, checksum) fingerprint per backend × layout.
        let mut reference: Option<(String, Vec<Option<u32>>, Vec<_>, u64)> = None;
        for layout in layouts() {
            for (label, mut backend) in backends_with(layout) {
                let handle = backend.query_handle();
                for scan in &scans {
                    backend
                        .insert_scan(scan.origin, &scan.points, 40.0)
                        .expect("scan within grid");
                }
                let snap = handle.snapshot();
                let (batch, _) = snap.batch_occupancy(&probes);
                let answers: Vec<Option<u32>> =
                    batch.into_iter().map(|o| o.map(f32::to_bits)).collect();
                let rays: Vec<_> = fan
                    .iter()
                    .map(|d| snap.cast_ray(origin, *d, 25.0, false).expect("ray in grid"))
                    .collect();
                let checksum = snap.checksum();
                match &reference {
                    None => {
                        reference = Some((format!("{label} ({layout:?})"), answers, rays, checksum))
                    }
                    Some((ref_label, ref_answers, ref_rays, ref_checksum)) => {
                        assert_eq!(
                            &answers, ref_answers,
                            "seed {seed}: {label} ({layout:?}) occupancy differs from {ref_label}"
                        );
                        assert_eq!(
                            &rays, ref_rays,
                            "seed {seed}: {label} ({layout:?}) cast_ray differs from {ref_label}"
                        );
                        assert_eq!(
                            checksum, *ref_checksum,
                            "seed {seed}: {label} ({layout:?}) leaf checksum differs from {ref_label}"
                        );
                    }
                }
            }
        }
    }
}
