//! Shared scaffolding for the cross-backend integration suites: the seeded
//! scenario generator and the backend roster. Each `tests/*.rs` binary pulls
//! this in with `mod common;`, so the differential, query-consistency and
//! stress batteries all replay identical deterministic scan sequences.

// Each test binary compiles its own copy and uses a subset of the helpers.
#![allow(dead_code)]

use octocache::pipeline::{MappingSystem, OctoMapSystem, RayTracer};
use octocache::{CacheConfig, ParallelOctoCache, SerialOctoCache, ShardedOctoMap, TreeLayout};
use octocache_geom::{Point3, VoxelGrid};
use octocache_octomap::{OccupancyOcTree, OccupancyParams};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Scenario seeds exercised; `OCTO_TEST_ITERS` overrides (CI sets it
/// higher).
pub fn num_scenarios() -> u64 {
    std::env::var("OCTO_TEST_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
}

/// One deterministic scan: an origin and a point cloud.
pub struct Scan {
    pub origin: Point3,
    pub points: Vec<Point3>,
}

/// Generates a deterministic scan sequence over a synthetic scene: a sensor
/// random-walking through a field of spherical "blobs", sweeping ray fans
/// in random directions. Everything derives from `seed`, so every backend
/// replays the identical sequence.
pub fn scenario(seed: u64) -> Vec<Scan> {
    let mut rng = StdRng::seed_from_u64(seed);
    // A handful of solid blobs the rays terminate on.
    let blobs: Vec<(Point3, f64)> = (0..6)
        .map(|_| {
            (
                Point3::new(
                    rng.random_range(-18.0..18.0),
                    rng.random_range(-18.0..18.0),
                    rng.random_range(-6.0..6.0),
                ),
                rng.random_range(1.0..3.0),
            )
        })
        .collect();
    let mut origin = Point3::new(
        rng.random_range(-4.0..4.0),
        rng.random_range(-4.0..4.0),
        rng.random_range(-1.0..1.0),
    );
    (0..10)
        .map(|_| {
            origin = Point3::new(
                (origin.x + rng.random_range(-2.0..2.0)).clamp(-20.0, 20.0),
                (origin.y + rng.random_range(-2.0..2.0)).clamp(-20.0, 20.0),
                (origin.z + rng.random_range(-0.5..0.5)).clamp(-4.0, 4.0),
            );
            let points = (0..120)
                .map(|_| {
                    // A random direction; the ray ends on the nearest blob
                    // surface along it, or at max range in free space.
                    let theta = rng.random_range(0.0..std::f64::consts::TAU);
                    let phi = rng.random_range(-0.4..0.4_f64);
                    let dir =
                        Point3::new(theta.cos() * phi.cos(), theta.sin() * phi.cos(), phi.sin());
                    let mut t_hit = 18.0;
                    for (c, r) in &blobs {
                        // Ray-sphere intersection from `origin` along `dir`.
                        let oc = Point3::new(origin.x - c.x, origin.y - c.y, origin.z - c.z);
                        let b = oc.x * dir.x + oc.y * dir.y + oc.z * dir.z;
                        let q = (oc.x * oc.x + oc.y * oc.y + oc.z * oc.z) - r * r;
                        let disc = b * b - q;
                        if disc > 0.0 {
                            let t = -b - disc.sqrt();
                            if t > 0.5 && t < t_hit {
                                t_hit = t;
                            }
                        }
                    }
                    Point3::new(
                        origin.x + dir.x * t_hit,
                        origin.y + dir.y * t_hit,
                        origin.z + dir.z * t_hit,
                    )
                })
                .collect();
            Scan { origin, points }
        })
        .collect()
}

pub fn grid() -> VoxelGrid {
    VoxelGrid::new(0.5, 8).unwrap()
}

/// A deliberately small cache so τ-eviction fires constantly and the
/// pipelines exercise their eviction/enqueue/merge paths.
pub fn cache() -> CacheConfig {
    CacheConfig::builder()
        .num_buckets(1 << 7)
        .tau(2)
        .build()
        .unwrap()
}

/// As [`cache`], pinned to an explicit octree storage layout.
pub fn cache_with(layout: TreeLayout) -> CacheConfig {
    CacheConfig::builder()
        .num_buckets(1 << 7)
        .tau(2)
        .tree_layout(layout)
        .build()
        .unwrap()
}

/// Replays `scans` through `backend` and returns the flushed tree.
pub fn build_tree(mut backend: Box<dyn MappingSystem>, scans: &[Scan]) -> OccupancyOcTree {
    for scan in scans {
        backend
            .insert_scan(scan.origin, &scan.points, 40.0)
            .expect("scan within grid");
    }
    backend.finish();
    backend.take_tree()
}

/// Every backend under test, with its display label.
pub fn backends() -> Vec<(String, Box<dyn MappingSystem>)> {
    let params = OccupancyParams::default();
    let mut v: Vec<(String, Box<dyn MappingSystem>)> = vec![
        (
            "serial".to_string(),
            Box::new(SerialOctoCache::new(grid(), params, cache())),
        ),
        (
            "sharded-x8".to_string(),
            Box::new(ShardedOctoMap::new(grid(), params, 8)),
        ),
    ];
    for n in [1usize, 2, 4, 8] {
        v.push((
            format!("parallel-x{n}"),
            Box::new(ParallelOctoCache::with_workers(
                grid(),
                params,
                cache(),
                RayTracer::Standard,
                n,
            )),
        ));
    }
    v
}

/// Every backend pinned to an explicit octree storage layout.
pub fn backends_with(layout: TreeLayout) -> Vec<(String, Box<dyn MappingSystem>)> {
    let params = OccupancyParams::default();
    let mut v: Vec<(String, Box<dyn MappingSystem>)> = vec![
        (
            "octomap".to_string(),
            Box::new(OctoMapSystem::with_layout(
                grid(),
                params,
                RayTracer::Standard,
                layout,
            )),
        ),
        (
            "serial".to_string(),
            Box::new(SerialOctoCache::new(grid(), params, cache_with(layout))),
        ),
        (
            "sharded-x8".to_string(),
            Box::new(ShardedOctoMap::with_layout(
                grid(),
                params,
                8,
                RayTracer::Standard,
                layout,
            )),
        ),
    ];
    for n in [1usize, 2, 4, 8] {
        v.push((
            format!("parallel-x{n}"),
            Box::new(ParallelOctoCache::with_workers(
                grid(),
                params,
                cache_with(layout),
                RayTracer::Standard,
                n,
            )),
        ));
    }
    v
}
