//! Shared scaffolding for the cross-backend integration suites: the seeded
//! scenario generator and the backend roster. Each `tests/*.rs` binary pulls
//! this in with `mod common;`, so the differential, query-consistency and
//! stress batteries all replay identical deterministic scan sequences.

// Each test binary compiles its own copy and uses a subset of the helpers.
#![allow(dead_code)]

use octocache::pipeline::{MappingSystem, OctoMapSystem, RayTracer};
use octocache::{CacheConfig, ParallelOctoCache, SerialOctoCache, ShardedOctoMap, TreeLayout};
use octocache_geom::VoxelGrid;
use octocache_octomap::{OccupancyOcTree, OccupancyParams};

/// One deterministic scan: an origin and a point cloud. Re-exported from
/// the shared generator so every suite speaks the same type.
pub use octocache_datasets::Scan;

/// Scenario seeds exercised; `OCTO_TEST_ITERS` overrides (CI sets it
/// higher).
pub fn num_scenarios() -> u64 {
    std::env::var("OCTO_TEST_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
}

/// Generates a deterministic scan sequence over a synthetic scene: a sensor
/// random-walking through a field of spherical "blobs", sweeping ray fans
/// in random directions. Everything derives from `seed`, so every backend
/// replays the identical sequence. The generator itself lives in
/// `octocache_datasets::scenario` so the bench bins replay the same
/// distribution.
pub fn scenario(seed: u64) -> Vec<Scan> {
    octocache_datasets::scenario::blob_walk(seed)
}

pub fn grid() -> VoxelGrid {
    VoxelGrid::new(0.5, 8).unwrap()
}

/// A deliberately small cache so τ-eviction fires constantly and the
/// pipelines exercise their eviction/enqueue/merge paths.
pub fn cache() -> CacheConfig {
    CacheConfig::builder()
        .num_buckets(1 << 7)
        .tau(2)
        .build()
        .unwrap()
}

/// As [`cache`], pinned to an explicit octree storage layout.
pub fn cache_with(layout: TreeLayout) -> CacheConfig {
    CacheConfig::builder()
        .num_buckets(1 << 7)
        .tau(2)
        .tree_layout(layout)
        .build()
        .unwrap()
}

/// Replays `scans` through `backend` and returns the flushed tree.
pub fn build_tree(mut backend: Box<dyn MappingSystem>, scans: &[Scan]) -> OccupancyOcTree {
    for scan in scans {
        backend
            .insert_scan(scan.origin, &scan.points, 40.0)
            .expect("scan within grid");
    }
    backend.finish();
    backend.take_tree()
}

/// Every backend under test, with its display label.
pub fn backends() -> Vec<(String, Box<dyn MappingSystem>)> {
    let params = OccupancyParams::default();
    let mut v: Vec<(String, Box<dyn MappingSystem>)> = vec![
        (
            "serial".to_string(),
            Box::new(SerialOctoCache::new(grid(), params, cache())),
        ),
        (
            "sharded-x8".to_string(),
            Box::new(ShardedOctoMap::new(grid(), params, 8)),
        ),
    ];
    for n in [1usize, 2, 4, 8] {
        v.push((
            format!("parallel-x{n}"),
            Box::new(ParallelOctoCache::with_workers(
                grid(),
                params,
                cache(),
                RayTracer::Standard,
                n,
            )),
        ));
    }
    v
}

/// Every backend pinned to an explicit octree storage layout.
pub fn backends_with(layout: TreeLayout) -> Vec<(String, Box<dyn MappingSystem>)> {
    backends_with_grid(grid(), layout)
}

/// Every backend over an explicit voxel grid and octree storage layout
/// (the golden-checksum suite replays dataset-scale scenarios that need a
/// larger grid than the default scenario one).
pub fn backends_with_grid(
    grid: VoxelGrid,
    layout: TreeLayout,
) -> Vec<(String, Box<dyn MappingSystem>)> {
    let params = OccupancyParams::default();
    let mut v: Vec<(String, Box<dyn MappingSystem>)> = vec![
        (
            "octomap".to_string(),
            Box::new(OctoMapSystem::with_layout(
                grid,
                params,
                RayTracer::Standard,
                layout,
            )),
        ),
        (
            "serial".to_string(),
            Box::new(SerialOctoCache::new(grid, params, cache_with(layout))),
        ),
        (
            "sharded-x8".to_string(),
            Box::new(ShardedOctoMap::with_layout(
                grid,
                params,
                8,
                RayTracer::Standard,
                layout,
            )),
        ),
    ];
    for n in [1usize, 2, 4, 8] {
        v.push((
            format!("parallel-x{n}"),
            Box::new(ParallelOctoCache::with_workers(
                grid,
                params,
                cache_with(layout),
                RayTracer::Standard,
                n,
            )),
        ));
    }
    v
}
