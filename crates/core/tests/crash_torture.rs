//! Crash-torture battery for the durable checkpoint + journal subsystem.
//!
//! Every test follows the same differential shape: compute the reference
//! leaf checksum of the baseline map after each scan prefix, run a durable
//! backend under a deterministic [`IoFaultPlan`] (process kills at each
//! [`KillPoint`], short writes, bit flips), then [`durable::recover`] and
//! assert the recovered tree bit-matches the reference prefix at the
//! reported `final_epoch`. The matrix sweeps all four backends, both octree
//! storage layouts, every kill point and several operation indices (journal
//! appends, checkpoint file writes and manifest publications all land on
//! distinct op slots), plus seed-derived plans (`OCTO_FAULT_SEED` shifts
//! the sweep in CI).

mod common;

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use common::{cache_with, grid, scenario, Scan};
use octocache::durable::{self, DurableError, DurableMap, IoFaultPlan, KillPoint};
use octocache::fault::PipelineError;
use octocache::pipeline::{MappingSystem, OctoMapSystem, RayTracer};
use octocache::{CacheConfig, ParallelOctoCache, SerialOctoCache, ShardedOctoMap, TreeLayout};
use octocache_octomap::{insert, rt, OccupancyOcTree, OccupancyParams};

const MAX_RANGE: f64 = 40.0;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("octo-torture-{tag}-{}-{seq}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Durability knobs used throughout: a checkpoint every 3 scans keeps the
/// op schedule dense (journal appends interleaved with checkpoint file +
/// manifest writes), 3 generations give fallback room.
fn durable_config() -> CacheConfig {
    CacheConfig::builder()
        .checkpoint_every(3)
        .checkpoint_generations(3)
        .build()
        .unwrap()
}

/// `prefix[n]` = leaf checksum of the baseline map after the first `n`
/// scans, computed through the exact insert path recovery replays.
/// Layout-independent (the leaf checksum folds keys and values only), so
/// one prefix table serves both storage layouts.
fn prefix_checksums(scans: &[Scan], ray_tracer: RayTracer) -> Vec<u64> {
    let mut tree =
        OccupancyOcTree::with_layout(grid(), OccupancyParams::default(), TreeLayout::Pointer);
    let mut batch = insert::VoxelBatch::new();
    let mut out = vec![tree.leaf_checksum()];
    for scan in scans {
        insert::compute_update(
            tree.grid(),
            scan.origin,
            &scan.points,
            MAX_RANGE,
            &mut batch,
        )
        .expect("scenario scans stay inside the grid");
        match ray_tracer {
            RayTracer::Standard => insert::apply_batch(&mut tree, &batch),
            RayTracer::Dedup => {
                let deduped = rt::dedup_batch(&batch);
                insert::apply_batch(&mut tree, &deduped);
            }
        }
        out.push(tree.leaf_checksum());
    }
    out
}

/// The backend roster tortured by the full matrix (one representative per
/// architecture; the differential suite already proves the worker-count
/// sweep equivalent).
fn torture_backends(layout: TreeLayout) -> Vec<(String, Box<dyn MappingSystem>)> {
    let params = OccupancyParams::default();
    vec![
        (
            "octomap".to_string(),
            Box::new(OctoMapSystem::with_layout(
                grid(),
                params,
                RayTracer::Standard,
                layout,
            )) as Box<dyn MappingSystem>,
        ),
        (
            "serial".to_string(),
            Box::new(SerialOctoCache::new(grid(), params, cache_with(layout))),
        ),
        (
            "sharded-x4".to_string(),
            Box::new(ShardedOctoMap::with_layout(
                grid(),
                params,
                4,
                RayTracer::Standard,
                layout,
            )),
        ),
        (
            "parallel-x2".to_string(),
            Box::new(ParallelOctoCache::with_workers(
                grid(),
                params,
                cache_with(layout),
                RayTracer::Standard,
                2,
            )),
        ),
    ]
}

#[derive(Debug, PartialEq, Eq)]
enum RunEnd {
    /// The injected kill fired; the map was dropped without sealing.
    Crashed,
    /// Every scan was inserted without the plan firing a kill.
    Completed,
}

/// Feeds `scans` through a durable wrapper over `backend` with the given
/// fault plan, simulating process death at the first injected crash (drop
/// without seal). Panics on any error other than the injected one.
fn run_with_plan(
    dir: &PathBuf,
    backend: Box<dyn MappingSystem>,
    ray_tracer: RayTracer,
    plan: IoFaultPlan,
    scans: &[Scan],
) -> RunEnd {
    let params = OccupancyParams::default();
    let mut map = match DurableMap::create_with_io_faults(
        dir,
        backend,
        params,
        ray_tracer,
        &durable_config(),
        Some(plan),
    ) {
        Ok(m) => m,
        Err(DurableError::InjectedCrash { .. }) => return RunEnd::Crashed,
        Err(e) => panic!("unexpected create error: {e}"),
    };
    for scan in scans {
        match map.insert_scan(scan.origin, &scan.points, MAX_RANGE) {
            Ok(_) => {}
            Err(PipelineError::Durable(DurableError::InjectedCrash { .. })) => {
                return RunEnd::Crashed;
            }
            Err(e) => panic!("unexpected scan error: {e}"),
        }
    }
    RunEnd::Completed
}

/// Recovers `dir` and asserts the tree bit-matches the reference prefix at
/// the reported epoch. Returns the report for extra assertions.
fn assert_recovers_to_prefix(
    dir: &PathBuf,
    layout: TreeLayout,
    prefix: &[u64],
    label: &str,
) -> durable::RecoveryReport {
    let (tree, report) = durable::recover_with_layout(dir, layout)
        .unwrap_or_else(|e| panic!("{label}: recovery failed: {e}"));
    let n = report.final_epoch as usize;
    assert!(
        n < prefix.len(),
        "{label}: recovered epoch {n} beyond the {} attempted scans",
        prefix.len() - 1
    );
    assert_eq!(
        tree.leaf_checksum(),
        prefix[n],
        "{label}: recovered map diverges from the crash-free {n}-scan reference"
    );
    assert_eq!(
        report.leaf_checksum,
        tree.leaf_checksum(),
        "{label}: report checksum disagrees with the returned tree"
    );
    report
}

#[test]
fn kill_matrix_recovers_to_durable_prefix_on_all_backends() {
    let scans = scenario(1);
    let prefix = prefix_checksums(&scans, RayTracer::Standard);
    // Ops with checkpoint_every(3): 0 = journal creation, appends at
    // 1,2,3, checkpoint (file + manifest) at 4,5, appends at 6,7,8, ...
    // so the swept ops hit an early append, a manifest write, and a
    // mid-run append.
    for layout in [TreeLayout::Pointer, TreeLayout::Arena] {
        for point in KillPoint::ALL {
            for op in [1u64, 5, 8] {
                for (name, backend) in torture_backends(layout) {
                    let label = format!("{name}/{layout:?}/kill:{point}@{op}");
                    let dir = temp_dir("kill");
                    let plan = IoFaultPlan {
                        kill: Some((op, point)),
                        flip: None,
                    };
                    let end = run_with_plan(&dir, backend, RayTracer::Standard, plan, &scans);
                    assert_eq!(end, RunEnd::Crashed, "{label}: kill never fired");
                    let report = assert_recovers_to_prefix(&dir, layout, &prefix, &label);
                    assert!(report.final_epoch <= scans.len() as u64, "{label}");
                    fs::remove_dir_all(&dir).unwrap();
                }
            }
        }
    }
}

#[test]
fn mid_write_kill_leaves_torn_tail_that_truncates_cleanly() {
    let scans = scenario(1);
    let prefix = prefix_checksums(&scans, RayTracer::Standard);
    let dir = temp_dir("torn");
    let plan = IoFaultPlan {
        // Op 1 is the first scan's journal append: killing mid-write
        // leaves half a frame on disk.
        kill: Some((1, KillPoint::MidWrite)),
        flip: None,
    };
    let backend = Box::new(OctoMapSystem::new(grid(), OccupancyParams::default()));
    let end = run_with_plan(&dir, backend, RayTracer::Standard, plan, &scans);
    assert_eq!(end, RunEnd::Crashed);
    let report = assert_recovers_to_prefix(&dir, TreeLayout::Pointer, &prefix, "torn-tail");
    assert_eq!(report.final_epoch, 0, "half a frame must not count");
    assert!(report.tail_dropped_bytes > 0, "torn bytes must be reported");
    assert!(!report.is_clean());
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bit_flips_recover_to_durable_prefix() {
    let scans = scenario(2);
    let prefix = prefix_checksums(&scans, RayTracer::Standard);
    // Ops 1..3 corrupt journal frames, op 4 the checkpoint file, op 5 the
    // manifest; bits probe the frame header, an early payload byte and a
    // deep payload byte (modulo payload length).
    for op in [1u64, 2, 4, 5, 7] {
        for bit in [0u64, 9, 4095] {
            for (name, backend) in [
                (
                    "octomap",
                    Box::new(OctoMapSystem::new(grid(), OccupancyParams::default()))
                        as Box<dyn MappingSystem>,
                ),
                (
                    "serial",
                    Box::new(SerialOctoCache::new(
                        grid(),
                        OccupancyParams::default(),
                        cache_with(TreeLayout::Pointer),
                    )),
                ),
            ] {
                let label = format!("{name}/flip:{bit}@{op}");
                let dir = temp_dir("flip");
                let plan = IoFaultPlan {
                    kill: None,
                    flip: Some((op, bit)),
                };
                // No seal: a final clean checkpoint would mask the damage.
                let end = run_with_plan(&dir, backend, RayTracer::Standard, plan, &scans);
                assert_eq!(end, RunEnd::Completed, "{label}: flips never kill");
                assert_recovers_to_prefix(&dir, TreeLayout::Pointer, &prefix, &label);
                fs::remove_dir_all(&dir).unwrap();
            }
        }
    }
}

#[test]
fn corrupted_newest_checkpoint_falls_back_a_generation() {
    let scans = scenario(3);
    let prefix = prefix_checksums(&scans, RayTracer::Standard);
    let dir = temp_dir("ckptrot");
    let backend = Box::new(OctoMapSystem::new(grid(), OccupancyParams::default()));
    let end = run_with_plan(
        &dir,
        backend,
        RayTracer::Standard,
        IoFaultPlan::default(),
        &scans,
    );
    assert_eq!(end, RunEnd::Completed);

    // Checkpoints were taken at epochs 3, 6 and 9 (no seal). Rot a byte in
    // the middle of the newest one.
    let ckpt_dir = durable::checkpoint_dir(&dir);
    let newest = ckpt_dir.join(format!("ckpt-{:016}.ot", 9));
    let mut bytes = fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    fs::write(&newest, &bytes).unwrap();

    let report = assert_recovers_to_prefix(&dir, TreeLayout::Pointer, &prefix, "ckpt-rot");
    assert!(
        !report.checkpoints_skipped.is_empty(),
        "the rotted generation must be reported as skipped: {report:?}"
    );
    assert_eq!(report.checkpoint_epoch, Some(6), "fallback generation");
    assert_eq!(report.records_replayed, 4, "epochs 7..=10 replayed");
    assert_eq!(report.final_epoch, scans.len() as u64);
    assert!(!report.is_clean());
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_manifest_falls_back_to_directory_scan() {
    let scans = scenario(4);
    let prefix = prefix_checksums(&scans, RayTracer::Standard);
    let dir = temp_dir("manifestrot");
    let backend = Box::new(OctoMapSystem::new(grid(), OccupancyParams::default()));
    let end = run_with_plan(
        &dir,
        backend,
        RayTracer::Standard,
        IoFaultPlan::default(),
        &scans,
    );
    assert_eq!(end, RunEnd::Completed);

    let manifest = durable::checkpoint_dir(&dir).join("MANIFEST");
    fs::write(&manifest, b"not a manifest at all").unwrap();

    let report = assert_recovers_to_prefix(&dir, TreeLayout::Pointer, &prefix, "manifest-rot");
    assert_eq!(
        report.checkpoint_epoch,
        Some(9),
        "directory scan must still find the newest valid checkpoint"
    );
    assert_eq!(report.final_epoch, scans.len() as u64);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn clean_sealed_runs_recover_as_noop_on_all_backends() {
    let scans = scenario(5);
    let prefix = prefix_checksums(&scans, RayTracer::Standard);
    let params = OccupancyParams::default();
    for layout in [TreeLayout::Pointer, TreeLayout::Arena] {
        for (name, backend) in torture_backends(layout) {
            let label = format!("{name}/{layout:?}/clean");
            let dir = temp_dir("clean");
            let mut map = DurableMap::create(
                &dir,
                backend,
                params,
                RayTracer::Standard,
                &durable_config(),
            )
            .unwrap();
            for scan in &scans {
                map.insert_scan(scan.origin, &scan.points, MAX_RANGE)
                    .unwrap();
            }
            map.seal().unwrap();
            drop(map);
            let report = assert_recovers_to_prefix(&dir, layout, &prefix, &label);
            assert!(report.is_clean(), "{label}: {report:?}");
            assert_eq!(report.records_replayed, 0, "{label}: seal leaves no tail");
            assert_eq!(report.tail_dropped_bytes, 0, "{label}");
            assert_eq!(report.checkpoint_epoch, Some(scans.len() as u64), "{label}");
            fs::remove_dir_all(&dir).unwrap();
        }
    }
}

#[test]
fn resume_after_crash_completes_to_crash_free_reference() {
    let scans = scenario(6);
    let prefix = prefix_checksums(&scans, RayTracer::Standard);
    for layout in [TreeLayout::Pointer, TreeLayout::Arena] {
        for (name, backend) in torture_backends(layout) {
            let label = format!("{name}/{layout:?}/resume");
            let dir = temp_dir("resume");
            let plan = IoFaultPlan {
                kill: Some((4, KillPoint::AfterWrite)),
                flip: None,
            };
            let end = run_with_plan(&dir, backend, RayTracer::Standard, plan, &scans);
            assert_eq!(end, RunEnd::Crashed, "{label}");

            let config = CacheConfig::builder()
                .checkpoint_every(3)
                .tree_layout(layout)
                .build()
                .unwrap();
            let (mut resumed, report) = DurableMap::resume(&dir, &config).unwrap();
            let done = report.final_epoch as usize;
            assert!(done < scans.len(), "{label}: crash fired before the end");
            for scan in &scans[done..] {
                resumed
                    .insert_scan(scan.origin, &scan.points, MAX_RANGE)
                    .unwrap();
            }
            resumed.seal().unwrap();
            assert_eq!(resumed.epoch(), scans.len() as u64, "{label}");
            drop(resumed);

            let report = assert_recovers_to_prefix(&dir, layout, &prefix, &label);
            assert_eq!(report.final_epoch, scans.len() as u64, "{label}");
            fs::remove_dir_all(&dir).unwrap();
        }
    }
}

#[test]
fn dedup_ray_tracer_replays_through_dedup_path() {
    let scans = scenario(7);
    let prefix = prefix_checksums(&scans, RayTracer::Dedup);
    let params = OccupancyParams::default();
    for (name, backend) in [
        (
            "octomap-rt",
            Box::new(OctoMapSystem::with_layout(
                grid(),
                params,
                RayTracer::Dedup,
                TreeLayout::Pointer,
            )) as Box<dyn MappingSystem>,
        ),
        (
            "serial-rt",
            Box::new(SerialOctoCache::with_ray_tracer(
                grid(),
                params,
                cache_with(TreeLayout::Pointer),
                RayTracer::Dedup,
            )),
        ),
    ] {
        let label = format!("{name}/dedup");
        let dir = temp_dir("dedup");
        let plan = IoFaultPlan {
            kill: Some((5, KillPoint::MidWrite)),
            flip: None,
        };
        let end = run_with_plan(&dir, backend, RayTracer::Dedup, plan, &scans);
        assert_eq!(end, RunEnd::Crashed, "{label}");
        let report = assert_recovers_to_prefix(&dir, TreeLayout::Pointer, &prefix, &label);
        assert_eq!(report.ray_tracer, RayTracer::Dedup, "{label}");
        fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn seeded_plans_recover_or_fail_typed() {
    // CI sweeps OCTO_FAULT_SEED ∈ {1, 7, 23}; each base covers 24
    // seed-derived plans (alternating kills and bit flips).
    let base: u64 = std::env::var("OCTO_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let scans = scenario(8);
    let prefix = prefix_checksums(&scans, RayTracer::Standard);
    for seed in base..base + 24 {
        let plan = IoFaultPlan::from_seed(seed);
        let label = format!("seed {seed} ({plan:?})");
        let dir = temp_dir("seeded");
        let backend = Box::new(OctoMapSystem::new(grid(), OccupancyParams::default()));
        run_with_plan(&dir, backend, RayTracer::Standard, plan, &scans);
        match durable::recover(&dir) {
            Ok((tree, report)) => {
                let n = report.final_epoch as usize;
                assert!(n < prefix.len(), "{label}");
                assert_eq!(tree.leaf_checksum(), prefix[n], "{label}");
            }
            // A kill on op 0 dies creating the journal: nothing durable
            // exists yet, and recovery says so with a typed error.
            Err(DurableError::Missing { .. }) => {
                assert!(
                    matches!(plan.kill, Some((0, p)) if p != KillPoint::AfterRename),
                    "{label}: Missing is only legitimate for a creation-time kill"
                );
            }
            // A flip on op 0 rots the journal header itself: unrecoverable
            // by design, reported as corruption rather than a wrong map.
            Err(DurableError::Corrupt { .. }) => {
                assert!(
                    matches!(plan.flip, Some((0, _))),
                    "{label}: Corrupt is only legitimate for a header flip"
                );
            }
            Err(e) => panic!("{label}: unexpected recovery error: {e}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
