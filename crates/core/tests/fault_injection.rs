//! Differential fault-injection suite for the parallel pipeline
//! (compiled only with `--features fault-injection`; CI runs it over an
//! `OCTO_FAULT_SEED` matrix — see `.github/workflows/ci.yml`).
//!
//! The contract under test (ISSUE 3): for every injected single fault and
//! every worker count N ∈ {1, 2, 4, 8}, `ParallelOctoCache` either
//! produces a map voxel-for-voxel identical to the serial backend, or
//! returns a typed `PipelineError` with the degraded flag set — and the
//! outcome is deterministic given the same fault plan.

#![cfg(feature = "fault-injection")]

use std::time::Duration;

use octocache::pipeline::{MappingSystem, RayTracer};
use octocache::{
    CacheConfig, FaultCounters, FaultPlan, Integrity, ParallelOctoCache, PipelineError,
    SerialOctoCache,
};
use octocache_geom::{Point3, VoxelGrid};
use octocache_octomap::{compare, OccupancyOcTree, OccupancyParams};

fn grid() -> VoxelGrid {
    VoxelGrid::new(0.5, 8).unwrap()
}

/// A deterministic 6-scan sequence spanning several octants, so every
/// worker count exercises more than one shard.
fn scans() -> Vec<(Point3, Vec<Point3>)> {
    (0..6)
        .map(|i| {
            let origin = Point3::new(0.0, 0.0, if i % 2 == 0 { 1.0 } else { -1.0 });
            let cloud = (0..60)
                .map(|j| {
                    let a = j as f64 * 0.41 + i as f64 * 0.13;
                    Point3::new(
                        12.0 * a.sin(),
                        12.0 * a.cos(),
                        if j % 2 == 0 { 4.0 } else { -4.0 },
                    )
                })
                .collect();
            (origin, cloud)
        })
        .collect()
}

/// Tiny cache (constant eviction) so every scan ships a batch.
fn config(plan: Option<FaultPlan>, stall: Duration) -> CacheConfig {
    let mut b = CacheConfig::builder();
    b.num_buckets(1 << 6).tau(1).stall_timeout(stall);
    if let Some(p) = plan {
        b.fault_plan(p);
    }
    b.build().unwrap()
}

/// As [`config`], with a worker-respawn budget.
fn config_with_restarts(plan: FaultPlan, max_restarts: u32) -> CacheConfig {
    let mut b = CacheConfig::builder();
    b.num_buckets(1 << 6)
        .tau(1)
        .stall_timeout(Duration::from_secs(10))
        .max_restarts(max_restarts)
        .fault_plan(plan);
    b.build().unwrap()
}

fn run_parallel_with(
    config: CacheConfig,
    n: usize,
) -> (Outcome, Vec<octocache::IntegrityTransition>) {
    let mut s = ParallelOctoCache::with_workers(
        grid(),
        OccupancyParams::default(),
        config,
        RayTracer::Standard,
        n,
    );
    let mut errors = Vec::new();
    for (origin, cloud) in scans() {
        if let Err(e) = s.insert_scan(origin, &cloud, 40.0) {
            errors.push(e);
        }
    }
    s.finish();
    let integrity = s.integrity();
    let counters = s.fault_counters();
    let history = s.integrity_history();
    (
        Outcome {
            errors,
            integrity,
            counters,
            tree: s.into_tree(),
        },
        history,
    )
}

fn serial_reference() -> OccupancyOcTree {
    let mut s = SerialOctoCache::new(
        grid(),
        OccupancyParams::default(),
        config(None, Duration::from_secs(10)),
    );
    for (origin, cloud) in scans() {
        s.insert_scan(origin, &cloud, 40.0).expect("valid scan");
    }
    Box::new(s).take_tree()
}

struct Outcome {
    errors: Vec<PipelineError>,
    integrity: Integrity,
    counters: FaultCounters,
    tree: OccupancyOcTree,
}

fn run_parallel(plan: FaultPlan, n: usize, stall: Duration) -> Outcome {
    let mut s = ParallelOctoCache::with_workers(
        grid(),
        OccupancyParams::default(),
        config(Some(plan), stall),
        RayTracer::Standard,
        n,
    );
    let mut errors = Vec::new();
    for (origin, cloud) in scans() {
        if let Err(e) = s.insert_scan(origin, &cloud, 40.0) {
            errors.push(e);
        }
    }
    s.finish();
    let integrity = s.integrity();
    let counters = s.fault_counters();
    Outcome {
        errors,
        integrity,
        counters,
        tree: s.into_tree(),
    }
}

/// The acceptance contract: identical map, or a typed error with the
/// degraded flag. Divergence without an error is the one forbidden state.
fn assert_contract(label: &str, reference: &OccupancyOcTree, o: &Outcome) {
    let d = compare::diff(reference, &o.tree, 0.0);
    if !d.is_identical() {
        assert!(
            !o.errors.is_empty(),
            "{label}: map diverged ({} value / {} coverage mismatches) with no error surfaced",
            d.value_mismatches,
            d.coverage_mismatches
        );
        assert!(
            o.integrity.is_degraded(),
            "{label}: map diverged but integrity is {:?}",
            o.integrity
        );
    }
    if !o.errors.is_empty() {
        assert!(
            o.integrity.is_degraded(),
            "{label}: error {:?} without degraded flag",
            o.errors[0]
        );
    }
    if o.counters.any() {
        assert!(
            o.integrity.is_degraded(),
            "{label}: fault counters {:?} without degraded flag",
            o.counters
        );
    }
}

#[test]
fn killed_workers_recover_exactly_at_every_layout() {
    let reference = serial_reference();
    for n in [1usize, 2, 4, 8] {
        for worker in [0usize, n - 1] {
            for batch in [0u64, 1, 3] {
                let plan = FaultPlan::from_spec(&format!("kill:{worker}@{batch}")).unwrap();
                let label = format!("kill:{worker}@{batch} n={n}");
                let o = run_parallel(plan, n, Duration::from_secs(2));
                assert_contract(&label, &reference, &o);
                // A kill is always recoverable: the retained batch is
                // re-applied, so the map must be exact, the error typed,
                // and the verdict Degraded (never Compromised).
                assert_eq!(o.counters.worker_panics, 1, "{label}");
                assert_eq!(o.errors.len(), 1, "{label}: {:?}", o.errors);
                assert!(
                    matches!(o.errors[0], PipelineError::WorkerPanicked { .. }),
                    "{label}: {:?}",
                    o.errors[0]
                );
                assert_eq!(o.integrity, Integrity::Degraded, "{label}");
                let d = compare::diff(&reference, &o.tree, 0.0);
                assert!(
                    d.is_identical(),
                    "{label}: {} value / {} coverage mismatches",
                    d.value_mismatches,
                    d.coverage_mismatches
                );
            }
        }
    }
}

#[test]
fn spawn_failures_degrade_without_errors_at_every_layout() {
    let reference = serial_reference();
    for n in [1usize, 2, 4, 8] {
        for worker in 0..n {
            let plan = FaultPlan::from_spec(&format!("spawn:{worker}")).unwrap();
            let label = format!("spawn:{worker} n={n}");
            let o = run_parallel(plan, n, Duration::from_secs(2));
            assert_contract(&label, &reference, &o);
            // Inline fallback: every scan succeeds, the map is exact, the
            // downgrade is visible in the counters and the verdict.
            assert!(o.errors.is_empty(), "{label}: {:?}", o.errors);
            assert_eq!(o.counters.spawn_failures, 1, "{label}");
            assert_eq!(o.integrity, Integrity::Degraded, "{label}");
            let d = compare::diff(&reference, &o.tree, 0.0);
            assert!(d.is_identical(), "{label}");
        }
    }
}

#[test]
fn stalled_worker_surfaces_queue_stalled() {
    let reference = serial_reference();
    // Worker 0 sleeps 400 ms at batch 1 against a 20 ms stall budget.
    let plan = FaultPlan::from_spec("stall:0@1:400000").unwrap();
    let o = run_parallel(plan, 2, Duration::from_millis(20));
    assert_contract("stall:0@1 n=2", &reference, &o);
    assert_eq!(o.errors.len(), 1, "{:?}", o.errors);
    assert!(
        matches!(o.errors[0], PipelineError::QueueStalled { worker: 0, .. }),
        "{:?}",
        o.errors[0]
    );
    assert!(o.counters.stall_timeouts >= 1);
    assert!(o.integrity.is_degraded());
}

#[test]
fn full_ring_backpressure_is_not_a_fault() {
    let reference = serial_reference();
    for n in [1usize, 2] {
        let plan = FaultPlan::from_spec("fill:0").unwrap();
        let o = run_parallel(plan, n, Duration::from_secs(10));
        assert!(o.errors.is_empty(), "n={n}: {:?}", o.errors);
        assert_eq!(o.integrity, Integrity::Intact, "n={n}");
        assert!(!o.counters.any(), "n={n}: {:?}", o.counters);
        let d = compare::diff(&reference, &o.tree, 0.0);
        assert!(d.is_identical(), "n={n}");
    }
}

/// `max_restarts = 0` (the default) must behave exactly like the
/// pre-supervisor permanent-degrade path: no respawn, no heal, sticky
/// degraded verdict, map still exact.
#[test]
fn zero_restart_budget_matches_permanent_degrade_path() {
    let reference = serial_reference();
    let plan = FaultPlan::from_spec("kill:0@1").unwrap();
    let implicit = run_parallel(plan, 2, Duration::from_secs(10));
    let (explicit, history) = run_parallel_with(config_with_restarts(plan, 0), 2);
    for (label, o) in [("default", &implicit), ("max_restarts=0", &explicit)] {
        assert_eq!(o.counters.restarts, 0, "{label}");
        assert_eq!(o.counters.heals, 0, "{label}");
        assert_eq!(o.counters.worker_panics, 1, "{label}");
        assert_eq!(o.integrity, Integrity::Degraded, "{label}");
        assert_eq!(o.errors.len(), 1, "{label}: {:?}", o.errors);
        let d = compare::diff(&reference, &o.tree, 0.0);
        assert!(d.is_identical(), "{label}");
    }
    assert_eq!(explicit.counters, implicit.counters);
    assert_eq!(history.len(), 1, "{history:?}");
    assert!(history[0].to.is_degraded(), "{history:?}");
    let d = compare::diff(&implicit.tree, &explicit.tree, 0.0);
    assert!(d.is_identical());
}

/// One kill with a restart budget: the worker is respawned on the next
/// scan, the verdict heals back to intact, and the map stays exact.
#[test]
fn respawned_worker_heals_and_map_stays_exact() {
    let reference = serial_reference();
    let plan = FaultPlan::from_spec("kill:0@1").unwrap();
    for n in [1usize, 2, 4, 8] {
        let (o, history) = run_parallel_with(config_with_restarts(plan, 4), n);
        let label = format!("kill:0@1 n={n} max_restarts=4");
        assert_eq!(o.counters.worker_panics, 1, "{label}");
        assert_eq!(o.counters.restarts, 1, "{label}");
        assert_eq!(o.counters.heals, 1, "{label}");
        assert_eq!(o.errors.len(), 1, "{label}: {:?}", o.errors);
        assert_eq!(o.integrity, Integrity::Intact, "{label}");
        // History shows the full dip-and-recover arc.
        assert_eq!(history.len(), 2, "{label}: {history:?}");
        assert!(history[0].to.is_degraded(), "{label}: {history:?}");
        assert_eq!(history[1].to, Integrity::Intact, "{label}: {history:?}");
        let d = compare::diff(&reference, &o.tree, 0.0);
        assert!(
            d.is_identical(),
            "{label}: {} value / {} coverage mismatches",
            d.value_mismatches,
            d.coverage_mismatches
        );
    }
}

/// Repeated kills exhaust the restart budget: each respawned generation is
/// killed again, and once the budget is spent the worker stays dead — the
/// verdict degrades permanently, but the map never diverges.
#[test]
fn repeated_kills_exhaust_the_restart_budget() {
    let reference = serial_reference();
    let plan = FaultPlan::from_spec("killevery:0@2").unwrap();
    let (o, history) = run_parallel_with(config_with_restarts(plan, 2), 2);
    assert_eq!(o.counters.restarts, 2, "{:?}", o.counters);
    assert_eq!(o.counters.heals, 2, "{:?}", o.counters);
    assert!(
        o.counters.worker_panics > 2,
        "budget exhaustion needs more kills than restarts: {:?}",
        o.counters
    );
    assert_eq!(o.integrity, Integrity::Degraded);
    // degrade → heal → degrade → heal → final (unhealed) degrade.
    assert_eq!(history.len(), 5, "{history:?}");
    assert!(history.last().unwrap().to.is_degraded(), "{history:?}");
    let d = compare::diff(&reference, &o.tree, 0.0);
    assert!(
        d.is_identical(),
        "{} value / {} coverage mismatches",
        d.value_mismatches,
        d.coverage_mismatches
    );
}

/// Seeded plans replay identically: same errors, same counters, same map.
/// (With the default 10 s stall budget every seeded stall is shorter than
/// the producer's patience, so timing cannot change the outcome.)
#[test]
fn seeded_fault_outcomes_are_deterministic() {
    for seed in [1u64, 7, 23, 99] {
        let plan = FaultPlan::from_seed(seed);
        let a = run_parallel(plan, 4, Duration::from_secs(10));
        let b = run_parallel(plan, 4, Duration::from_secs(10));
        assert_eq!(
            format!("{:?}", a.errors),
            format!("{:?}", b.errors),
            "seed {seed}: errors differ between runs"
        );
        assert_eq!(a.counters, b.counters, "seed {seed}");
        assert_eq!(a.integrity, b.integrity, "seed {seed}");
        let d = compare::diff(&a.tree, &b.tree, 0.0);
        assert!(d.is_identical(), "seed {seed}: maps differ between runs");
    }
}

/// The CI matrix leg: `OCTO_FAULT_SEED` selects the plan; the contract must
/// hold at every worker count. Without the variable a default seed runs, so
/// the test is never vacuous.
#[test]
fn env_seeded_fault_honours_the_contract_at_every_layout() {
    let seed: u64 = std::env::var("OCTO_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let plan = FaultPlan::from_seed(seed);
    let reference = serial_reference();
    for n in [1usize, 2, 4, 8] {
        let label = format!("seed {seed} ({plan:?}) n={n}");
        let o = run_parallel(plan, n, Duration::from_secs(10));
        assert_contract(&label, &reference, &o);
    }
}
