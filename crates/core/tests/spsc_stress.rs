//! Cross-thread stress tests for the Lamport SPSC ring that carries the
//! eviction stream from the cache thread to each octree-update worker.
//!
//! A real producer thread and a real consumer thread hammer
//! `push`/`push_blocking`/`try_pop` across every capacity from 1 to 64,
//! checking a sequence oracle: items must arrive exactly once, in order,
//! with no loss, duplication or reordering — the property the N-worker
//! batch protocol depends on.
//!
//! Iteration counts scale with the `OCTO_TEST_ITERS` env knob so CI can
//! crank repetitions (see `.github/workflows/ci.yml`).

use std::thread;

use octocache::spsc::{channel, Full};

/// Repetitions of each capacity sweep; CI raises this via the env knob.
fn repeats() -> usize {
    std::env::var("OCTO_TEST_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Items pushed per (capacity, repeat) cell. Small enough that the full
/// 64-capacity sweep stays fast at the default repeat count.
const ITEMS: u64 = 2_000;

/// Pushes `0..ITEMS` with `push_blocking` while the consumer spins on
/// `try_pop`; every value must come out exactly once, in order.
#[test]
fn blocking_push_preserves_sequence_across_capacities() {
    for rep in 0..repeats() {
        for capacity in 1..=64usize {
            let (mut tx, mut rx) = channel::<u64>(capacity);
            // Capacity rounds up to the next power of two.
            assert!(tx.capacity() >= capacity);
            assert!(tx.capacity().is_power_of_two());

            let producer = thread::spawn(move || {
                for i in 0..ITEMS {
                    tx.push_blocking(i);
                }
            });

            let mut expected = 0u64;
            while expected < ITEMS {
                if let Some(v) = rx.try_pop() {
                    assert_eq!(
                        v, expected,
                        "capacity {capacity} rep {rep}: out-of-order item"
                    );
                    expected += 1;
                } else {
                    // Yield, not spin: on a loaded (or single-core) machine
                    // the producer needs the timeslice to make progress.
                    thread::yield_now();
                }
            }
            producer.join().expect("producer panicked");
            assert!(rx.is_empty(), "capacity {capacity}: items left behind");
            assert_eq!(rx.try_pop(), None);
        }
    }
}

/// Non-blocking `push` with retry-on-`Full`: the returned item must be the
/// one just offered (nothing is swallowed), and the sequence oracle must
/// still hold. The consumer drains in bursts to vary queue fill levels.
#[test]
fn non_blocking_push_returns_rejected_item_and_keeps_order() {
    for rep in 0..repeats() {
        for capacity in [1usize, 2, 3, 7, 16, 64] {
            let (mut tx, mut rx) = channel::<u64>(capacity);

            let producer = thread::spawn(move || {
                let mut full_hits = 0u64;
                for i in 0..ITEMS {
                    let mut item = i;
                    loop {
                        match tx.push(item) {
                            Ok(()) => break,
                            Err(Full(rejected)) => {
                                assert_eq!(rejected, i, "push swallowed the offered item");
                                full_hits += 1;
                                item = rejected;
                                thread::yield_now();
                            }
                        }
                    }
                }
                full_hits
            });

            let mut expected = 0u64;
            let mut burst = 0usize;
            while expected < ITEMS {
                if let Some(v) = rx.try_pop() {
                    assert_eq!(
                        v, expected,
                        "capacity {capacity} rep {rep}: out-of-order item"
                    );
                    expected += 1;
                    burst += 1;
                    // Pause between bursts so the ring oscillates between
                    // full and empty instead of settling into lockstep.
                    if burst.is_multiple_of(capacity * 3 + 1) {
                        thread::yield_now();
                    }
                } else {
                    thread::yield_now();
                }
            }
            let full_hits = producer.join().expect("producer panicked");
            assert!(rx.is_empty());
            // Not a correctness property, but on a capacity-1 ring with a
            // bursty consumer the producer must have seen `Full` at least
            // once, proving the rejection path actually ran.
            if capacity == 1 {
                assert!(full_hits > 0, "Full path never exercised");
            }
        }
    }
}

/// Teardown while items are in flight: the consumer walks away mid-stream
/// (simulating a dead worker), the producer keeps pushing until the ring
/// jams, then both halves drop. Every item must be dropped exactly once —
/// whether it was consumed, abandoned by the producer, or drained from the
/// ring by the last half's `Drop`. Leaks or double-drops here would turn a
/// worker fault into memory unsoundness in the pipeline.
#[test]
fn teardown_mid_stream_drops_every_item_exactly_once() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Counts its own drops; a clone of the shared counter per item.
    struct Tracked(Arc<AtomicU64>);
    impl Drop for Tracked {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    const TOTAL: u64 = 500;
    for rep in 0..repeats() {
        for capacity in [1usize, 2, 8, 64] {
            // Drain strictly fewer items than the producer offers, so the
            // ring still holds (or will receive) items when the consumer
            // abandons it.
            for drain in [0u64, 1, TOTAL / 2] {
                let drops = Arc::new(AtomicU64::new(0));
                let (mut tx, mut rx) = channel::<Tracked>(capacity);

                let d = Arc::clone(&drops);
                // Returns how many `Tracked` items it created; every one
                // must eventually be dropped exactly once.
                let producer = thread::spawn(move || -> u64 {
                    let mut created = 0u64;
                    for _ in 0..TOTAL {
                        let mut item = Tracked(Arc::clone(&d));
                        created += 1;
                        let mut attempts = 0u32;
                        loop {
                            match tx.push(item) {
                                Ok(()) => break,
                                Err(Full(rejected)) => {
                                    item = rejected;
                                    attempts += 1;
                                    if attempts > 200 {
                                        // Consumer is gone and the ring is
                                        // jammed: abandon this item (drops
                                        // here) and stop producing.
                                        drop(item);
                                        return created;
                                    }
                                    thread::yield_now();
                                }
                            }
                        }
                    }
                    // `tx` drops here; if `rx` is already gone this is the
                    // last half and `Ring::drop` drains the leftovers.
                    created
                });

                let consumer = thread::spawn(move || -> u64 {
                    let mut popped = 0u64;
                    let mut empty_polls = 0u32;
                    // Bounded patience so a producer that gave up (jammed
                    // ring) cannot strand the consumer.
                    while popped < drain && empty_polls < 100_000 {
                        if rx.try_pop().is_some() {
                            popped += 1;
                            empty_polls = 0;
                        } else {
                            empty_polls += 1;
                            thread::yield_now();
                        }
                    }
                    // Walk away with items still in flight.
                    drop(rx);
                    popped
                });

                let created = producer.join().expect("producer panicked");
                let popped = consumer.join().expect("consumer panicked");

                // Both halves are gone, so the ring itself has been dropped
                // and drained. Exactly-once: consumed + abandoned + drained
                // must equal the number of items ever created.
                let dropped = drops.load(Ordering::SeqCst);
                assert_eq!(
                    dropped,
                    created,
                    "capacity {capacity} drain {drain} rep {rep}: \
                     {created} items created but {dropped} drops — \
                     {}",
                    if dropped < created {
                        "leak"
                    } else {
                        "double drop"
                    }
                );
                assert!(
                    created >= popped && created <= TOTAL,
                    "capacity {capacity} drain {drain} rep {rep}: \
                     {created} created but {popped} consumed"
                );
            }
        }
    }
}

/// Same teardown, but with the producer finishing first: push everything,
/// drop `tx`, then the consumer pops a few and drops `rx` with items still
/// inside. The ring's own `Drop` must reclaim the rest — exactly once.
#[test]
fn consumer_abandonment_after_producer_exit_reclaims_ring_contents() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[derive(Debug)]
    struct Tracked(Arc<AtomicU64>);
    impl Drop for Tracked {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    for capacity in [1usize, 4, 32] {
        let real_capacity = capacity.next_power_of_two() as u64;
        for consumed in 0..=real_capacity {
            let drops = Arc::new(AtomicU64::new(0));
            let (mut tx, mut rx) = channel::<Tracked>(capacity);
            for _ in 0..real_capacity {
                tx.push(Tracked(Arc::clone(&drops))).expect("fits");
            }
            drop(tx);
            for _ in 0..consumed {
                let item = rx.try_pop().expect("item available");
                drop(item);
            }
            assert_eq!(drops.load(Ordering::SeqCst), consumed);
            drop(rx); // last half: Ring::drop drains the remainder
            assert_eq!(
                drops.load(Ordering::SeqCst),
                real_capacity,
                "capacity {real_capacity} consumed {consumed}: \
                 in-flight items not reclaimed exactly once"
            );
        }
    }
}

/// `len`/`is_empty` observed from both ends stay within the ring's
/// capacity and agree with the net flow, single-threaded edge-case sweep.
#[test]
fn len_tracks_net_flow_at_every_capacity() {
    for requested in 1..=64usize {
        let (mut tx, mut rx) = channel::<u64>(requested);
        // The ring rounds the requested capacity up to a power of two;
        // everything below works against the real slot count.
        let capacity = tx.capacity();
        assert!(capacity >= requested);
        assert!(tx.is_empty() && rx.is_empty());

        // Fill to capacity; the next push must be rejected.
        for i in 0..capacity as u64 {
            tx.push(i).expect("ring not full yet");
            assert_eq!(tx.len(), i as usize + 1);
            assert_eq!(rx.len(), i as usize + 1);
        }
        match tx.push(u64::MAX) {
            Err(Full(v)) => assert_eq!(v, u64::MAX),
            Ok(()) => panic!("capacity {capacity}: accepted beyond capacity"),
        }

        // Drain interleaved with refills: len must follow the net flow.
        for round in 0..capacity as u64 {
            assert_eq!(rx.try_pop(), Some(round));
            assert_eq!(rx.len(), capacity - 1);
            tx.push(capacity as u64 + round).expect("slot just freed");
            assert_eq!(tx.len(), capacity);
        }
        for round in 0..capacity as u64 {
            assert_eq!(rx.try_pop(), Some(capacity as u64 + round));
        }
        assert!(rx.is_empty() && tx.is_empty());
        assert_eq!(rx.try_pop(), None);
    }
}
