//! Chaos soak for the self-healing supervised runtime (compiled only with
//! `--features fault-injection`; CI runs it in release over an
//! `OCTO_SOAK_SEED` matrix — see `.github/workflows/ci.yml`).
//!
//! A seeded long run (hundreds of scans) interleaves periodic worker
//! kills, memory pressure from a deliberately tight budget, and burst
//! overload, across worker counts and both octree storage layouts. The
//! contract under test:
//!
//! 1. The final map is voxel-for-voxel identical to a serial replay of
//!    exactly the scans that were applied (shed scans excluded) — worker
//!    respawn re-applies retained shares idempotently and memory relief
//!    (inline drain + prune) is map-neutral.
//! 2. Integrity re-converges to `Intact` after every heal: the transition
//!    history strictly alternates degrade → heal, and each respawn is
//!    matched by a heal while the restart budget lasts.
//! 3. The governor never admits a scan at the reject rung: no applied
//!    scan's record carries the `over-budget` pressure label (the scan
//!    would have been shed), which is the boundary-measured form of
//!    "memory never exceeds the budget".

#![cfg(feature = "fault-injection")]

mod common;

use std::time::Duration;

use common::Scan;
use octocache::pipeline::{MappingSystem, RayTracer};
use octocache::{
    CacheConfig, FaultPlan, Integrity, ParallelOctoCache, PipelineError, ScanOutcome,
    SerialOctoCache, SharedRecorder, ShedReason, TreeLayout,
};
use octocache_octomap::{compare, OccupancyOcTree, OccupancyParams};
use proptest::prelude::*;

const MAX_RANGE: f64 = 40.0;

/// Hundreds of deterministic scans: several blob-walk scenarios chained
/// into one long mission.
fn soak_scans(seed: u64) -> Vec<Scan> {
    (0..20)
        .flat_map(|i| common::scenario(seed.wrapping_mul(1009).wrapping_add(i)))
        .collect()
}

/// The seed under soak; `OCTO_SOAK_SEED` selects the CI matrix leg.
fn soak_seed() -> u64 {
    std::env::var("OCTO_SOAK_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Serial replay of `scans` (no supervisor) — the differential reference.
fn serial_reference(scans: &[&Scan], layout: TreeLayout) -> OccupancyOcTree {
    let mut s = SerialOctoCache::new(
        common::grid(),
        OccupancyParams::default(),
        common::cache_with(layout),
    );
    for scan in scans {
        s.insert_scan(scan.origin, &scan.points, MAX_RANGE)
            .expect("reference scan");
    }
    Box::new(s).take_tree()
}

/// What one supervised run produced: which scans were applied, the final
/// tree, and the supervisor's own account of the run.
struct SoakOutcome {
    applied: Vec<usize>,
    sheds: u64,
    kill_errors: u64,
    tree: OccupancyOcTree,
    map_summary: MapSummary,
}

struct MapSummary {
    integrity: Integrity,
    counters: octocache::FaultCounters,
    history: Vec<octocache::IntegrityTransition>,
    records: Vec<octocache::ScanRecord>,
}

/// Drives every scan through the supervised admission gate. A
/// `WorkerPanicked` error is an *applied* scan (the retained share was
/// re-applied inline before the deferred fault surfaced); any other error
/// fails the soak.
fn run_supervised(scans: &[Scan], config: CacheConfig, workers: usize) -> SoakOutcome {
    let mut map = ParallelOctoCache::with_workers(
        common::grid(),
        OccupancyParams::default(),
        config,
        RayTracer::Standard,
        workers,
    );
    let recorder = SharedRecorder::new();
    map.set_recorder(Box::new(recorder.clone()));
    let mut applied = Vec::new();
    let mut sheds = 0u64;
    let mut kill_errors = 0u64;
    for (i, scan) in scans.iter().enumerate() {
        match map.submit_scan(scan.origin, &scan.points, MAX_RANGE) {
            Ok(ScanOutcome::Applied(_)) => applied.push(i),
            Ok(ScanOutcome::Shed(ShedReason::OverBudget { .. })) => sheds += 1,
            Ok(ScanOutcome::Shed(reason)) => {
                panic!("scan {i}: unexpected shed reason {reason} (no deadline configured)")
            }
            Err(PipelineError::WorkerPanicked { .. }) => {
                kill_errors += 1;
                applied.push(i);
            }
            Err(e) => panic!("scan {i}: unexpected error {e}"),
        }
    }
    map.finish();
    let map_summary = MapSummary {
        integrity: map.integrity(),
        counters: map.fault_counters(),
        history: map.integrity_transitions(),
        records: recorder.records(),
    };
    SoakOutcome {
        applied,
        sheds,
        kill_errors,
        tree: map.into_tree(),
        map_summary,
    }
}

fn assert_differential(label: &str, scans: &[Scan], o: &SoakOutcome, layout: TreeLayout) {
    let applied: Vec<&Scan> = o.applied.iter().map(|&i| &scans[i]).collect();
    let reference = serial_reference(&applied, layout);
    let d = compare::diff(&reference, &o.tree, 0.0);
    assert!(
        d.is_identical(),
        "{label}: map diverged from the serial replay of applied scans \
         ({} value / {} coverage mismatches; {} applied, {} shed, {} kills)",
        d.value_mismatches,
        d.coverage_mismatches,
        o.applied.len(),
        o.sheds,
        o.kill_errors
    );
}

/// Every degrade in the history is matched by a subsequent heal (the last
/// degrade may be trailing when the final scans were killed or shed).
fn assert_reconverges(label: &str, s: &MapSummary) {
    let mut open_degrade = false;
    for t in &s.history {
        if t.to.is_degraded() {
            assert!(
                !open_degrade,
                "{label}: two degrades without a heal between them: {:?}",
                s.history
            );
            open_degrade = true;
        } else {
            assert!(
                open_degrade,
                "{label}: heal without a preceding degrade: {:?}",
                s.history
            );
            open_degrade = false;
        }
    }
    if !open_degrade {
        assert_eq!(
            s.integrity,
            Integrity::Intact,
            "{label}: history re-converged but the verdict is stuck: {:?}",
            s.history
        );
    }
}

#[test]
fn chaos_soak_heals_sheds_and_stays_differential_exact() {
    let seed = soak_seed();
    let scans = soak_scans(seed);
    assert!(scans.len() >= 200, "soak needs hundreds of scans");
    for layout in [TreeLayout::Pointer, TreeLayout::Arena] {
        // The budget is derived from the run itself: ~4/5 of the final
        // serial tree footprint, so the pressure ladder must engage as the
        // map approaches completion without starving the whole run.
        let all: Vec<&Scan> = scans.iter().collect();
        let budget = (serial_reference(&all, layout).memory_usage() as u64) * 4 / 5;
        for workers in [2usize, 4, 8] {
            let label = format!("soak seed={seed} layout={layout:?} n={workers}");
            let mut b = CacheConfig::builder();
            b.num_buckets(1 << 7)
                .tau(2)
                .tree_layout(layout)
                .mem_budget(budget)
                .max_restarts(10_000)
                .stall_timeout(Duration::from_secs(10));
            b.fault_plan(FaultPlan::from_spec("killevery:0@7").expect("spec"));
            let o = run_supervised(&scans, b.build().unwrap(), workers);
            let s = &o.map_summary;

            // Worker kills happened and every one of them was healed by a
            // respawn (the restart budget is never exhausted here).
            assert!(o.kill_errors >= 1, "{label}: the kill fault never fired");
            assert!(s.counters.heals >= 1, "{label}: no heals recorded");
            assert_eq!(
                s.counters.restarts, s.counters.heals,
                "{label}: a respawn failed to heal: {:?}",
                s.counters
            );
            assert_reconverges(&label, s);

            // The governor engaged (some scan saw pressure above normal)
            // but never admitted a scan at the reject rung.
            assert!(
                s.records
                    .iter()
                    .any(|r| !r.pressure_level.is_empty() && r.pressure_level != "normal"),
                "{label}: the pressure ladder never engaged"
            );
            assert!(
                s.records.iter().all(|r| r.pressure_level != "over-budget"),
                "{label}: a scan was applied at the reject rung"
            );
            // Heals and restarts land in the per-scan records too.
            assert_eq!(
                s.records.iter().map(|r| r.heals).sum::<u64>(),
                s.counters.heals,
                "{label}"
            );
            assert!(
                s.records.iter().map(|r| r.sheds).sum::<u64>() <= o.sheds,
                "{label}: record sheds exceed observed sheds"
            );

            // The capstone: the map equals a serial replay of exactly the
            // applied scans.
            assert_differential(&label, &scans, &o, layout);
        }
    }
}

#[test]
fn burst_overload_sheds_and_reapplies_cleanly() {
    // An absurdly tight deadline forces the admission gate into its
    // shed/decay/re-admit cycle: most scans shed, some apply, and the map
    // must equal the serial replay of the applied subset. No faults are
    // injected, so the verdict stays intact throughout.
    let scans = soak_scans(soak_seed());
    for layout in [TreeLayout::Pointer, TreeLayout::Arena] {
        let mut b = CacheConfig::builder();
        b.num_buckets(1 << 7)
            .tau(2)
            .tree_layout(layout)
            .shed_deadline(Duration::from_micros(1));
        let mut map = ParallelOctoCache::with_workers(
            common::grid(),
            OccupancyParams::default(),
            b.build().unwrap(),
            RayTracer::Standard,
            2,
        );
        let mut applied = Vec::new();
        let mut sheds = 0u64;
        for (i, scan) in scans.iter().enumerate() {
            match map.submit_scan(scan.origin, &scan.points, MAX_RANGE) {
                Ok(ScanOutcome::Applied(_)) => applied.push(i),
                Ok(ScanOutcome::Shed(ShedReason::DeadlineExceeded { .. })) => sheds += 1,
                other => panic!("scan {i}: unexpected outcome {other:?}"),
            }
        }
        map.finish();
        assert!(sheds > 0, "layout={layout:?}: overload never shed");
        assert!(
            !applied.is_empty(),
            "layout={layout:?}: gate never re-admitted"
        );
        assert_eq!(map.integrity(), Integrity::Intact);
        assert!(!map.fault_counters().any());
        let applied_scans: Vec<&Scan> = applied.iter().map(|&i| &scans[i]).collect();
        let reference = serial_reference(&applied_scans, layout);
        let d = compare::diff(&reference, &map.into_tree(), 0.0);
        assert!(
            d.is_identical(),
            "layout={layout:?}: {} value / {} coverage mismatches over {} applied / {} shed",
            d.value_mismatches,
            d.coverage_mismatches,
            applied.len(),
            sheds
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Kills at arbitrary cadence (including mid-`BatchEnd` positions,
    /// since the cadence is measured in batches): the retained-share
    /// re-apply must stay idempotent across every respawn — the healed map
    /// always equals the serial reference.
    #[test]
    fn respawn_reapply_is_idempotent(seed in 0u64..256, every in 1u64..6) {
        let scans: Vec<Scan> = (0..2)
            .flat_map(|i| common::scenario(seed.wrapping_mul(31).wrapping_add(i)))
            .collect();
        let mut b = CacheConfig::builder();
        b.num_buckets(1 << 6)
            .tau(1)
            .max_restarts(10_000)
            .stall_timeout(Duration::from_secs(10));
        b.fault_plan(FaultPlan::from_spec(&format!("killevery:0@{every}")).unwrap());
        let o = run_supervised(&scans, b.build().unwrap(), 2);
        prop_assert_eq!(o.sheds, 0); // no budget configured
        let s = &o.map_summary;
        prop_assert_eq!(s.counters.restarts, s.counters.heals);
        let applied: Vec<&Scan> = o.applied.iter().map(|&i| &scans[i]).collect();
        let reference = serial_reference(&applied, TreeLayout::Pointer);
        let d = compare::diff(&reference, &o.tree, 0.0);
        prop_assert!(
            d.is_identical(),
            "seed={} every={}: {} value / {} coverage mismatches ({} kills, {} restarts)",
            seed, every, d.value_mismatches, d.coverage_mismatches,
            o.kill_errors, s.counters.restarts
        );
    }
}
