//! Cross-backend differential suite: every mapping backend must produce a
//! voxel-for-voxel identical occupancy map.
//!
//! A seeded scenario generator (shared with the query-consistency and
//! stress suites via `tests/common`) replays deterministic scan sequences
//! over synthetic scenes through the plain `OccupancyOcTree` baseline, the
//! serial OctoCache, the parallel OctoCache at N ∈ {1, 2, 4, 8} workers and
//! the sharded OctoMap, then compares the resulting trees with
//! `octomap::compare` — including a structural comparison after pruning.
//! This is the gate for the N-worker pipeline: any routing, merge or
//! ordering bug shows up as a log-odds mismatch here.
//!
//! Scenario count is scaled by the `OCTO_TEST_ITERS` env knob so CI can
//! crank iterations (see `.github/workflows/ci.yml`).

mod common;

use common::{backends, backends_with, build_tree, cache, grid, num_scenarios, scenario};
use octocache::pipeline::{OctoMapSystem, RayTracer};
use octocache::{ParallelOctoCache, TreeLayout};
use octocache_octomap::{compare, OccupancyParams};

#[test]
fn all_backends_match_octomap_baseline() {
    for seed in 0..num_scenarios() {
        let scans = scenario(seed * 7919 + 1);
        let baseline = build_tree(
            Box::new(OctoMapSystem::new(grid(), OccupancyParams::default())),
            &scans,
        );
        assert!(baseline.num_nodes() > 1, "scenario {seed} built nothing");

        for (label, backend) in backends() {
            let tree = build_tree(backend, &scans);
            let d = compare::diff(&baseline, &tree, 1e-4);
            assert!(
                d.is_identical(),
                "seed {seed}, backend {label}: {} value / {} coverage mismatches of {} \
                 voxels (agreement {:.6}, max |diff| {})",
                d.value_mismatches,
                d.coverage_mismatches,
                d.known_voxels,
                d.agreement(),
                d.max_abs_diff
            );
        }
    }
}

#[test]
fn pruned_trees_stay_equivalent_and_structurally_equal() {
    let scans = scenario(42);
    let mut baseline = build_tree(
        Box::new(OctoMapSystem::new(grid(), OccupancyParams::default())),
        &scans,
    );
    baseline.prune();

    for (label, backend) in backends() {
        let mut tree = build_tree(backend, &scans);
        tree.prune();
        // Pruning must not change the flattened map…
        let d = compare::diff(&baseline, &tree, 1e-4);
        assert!(
            d.is_identical(),
            "pruned {label}: {} value / {} coverage mismatches",
            d.value_mismatches,
            d.coverage_mismatches
        );
        // …and identical maps must prune to identical structure.
        assert_eq!(
            tree.num_nodes(),
            baseline.num_nodes(),
            "pruned node count differs for {label}"
        );
        assert_eq!(
            tree.num_leaves(),
            baseline.num_leaves(),
            "pruned leaf count differs for {label}"
        );
    }
}

#[test]
fn arena_layout_matches_pointer_layout_on_every_backend() {
    // The arena node pool must be observationally indistinguishable from the
    // pointer tree: the same backend built twice — once per layout — over the
    // same scenario must produce bit-for-bit identical maps (tolerance 0.0),
    // and identical structure after pruning. This covers the serial cache,
    // the octant-sharded baseline (whose `take_tree` exercises the arena's
    // child-block splice merge), the plain octomap pipeline, and the
    // N-worker parallel pipeline at N ∈ {1, 2, 4, 8}.
    for seed in 0..num_scenarios() {
        let scans = scenario(seed * 6151 + 13);
        let pointer = backends_with(TreeLayout::Pointer);
        let arena = backends_with(TreeLayout::Arena);
        for ((label, pb), (_, ab)) in pointer.into_iter().zip(arena) {
            let mut ptree = build_tree(pb, &scans);
            let mut atree = build_tree(ab, &scans);
            assert_eq!(ptree.layout(), TreeLayout::Pointer, "{label}");
            assert_eq!(atree.layout(), TreeLayout::Arena, "{label}");
            let d = compare::diff(&ptree, &atree, 0.0);
            assert!(
                d.is_identical(),
                "seed {seed}, backend {label}: pointer vs arena differ — {} value / \
                 {} coverage mismatches of {} voxels (max |diff| {})",
                d.value_mismatches,
                d.coverage_mismatches,
                d.known_voxels,
                d.max_abs_diff
            );
            // Identical maps must also prune identically across layouts.
            ptree.prune();
            atree.prune();
            let dp = compare::diff(&ptree, &atree, 0.0);
            assert!(
                dp.is_identical(),
                "seed {seed}, backend {label}: layouts diverge after prune"
            );
            assert_eq!(
                ptree.num_nodes(),
                atree.num_nodes(),
                "seed {seed}, backend {label}: pruned node count differs across layouts"
            );
            assert_eq!(
                ptree.num_leaves(),
                atree.num_leaves(),
                "seed {seed}, backend {label}: pruned leaf count differs across layouts"
            );
        }
    }
}

#[test]
fn parallel_worker_counts_agree_with_each_other() {
    // Sharper than the baseline comparison: the four parallel layouts must
    // agree bit-for-bit pairwise (tolerance 0.0), since they apply the same
    // per-voxel accumulation in the same per-key order.
    let scans = scenario(7);
    let params = OccupancyParams::default();
    let tree1 = build_tree(
        Box::new(ParallelOctoCache::with_workers(
            grid(),
            params,
            cache(),
            RayTracer::Standard,
            1,
        )),
        &scans,
    );
    for n in [2usize, 4, 8] {
        let tree_n = build_tree(
            Box::new(ParallelOctoCache::with_workers(
                grid(),
                params,
                cache(),
                RayTracer::Standard,
                n,
            )),
            &scans,
        );
        let d = compare::diff(&tree1, &tree_n, 0.0);
        assert!(
            d.is_identical(),
            "N=1 vs N={n}: {} value / {} coverage mismatches of {}",
            d.value_mismatches,
            d.coverage_mismatches,
            d.known_voxels
        );
    }
}
