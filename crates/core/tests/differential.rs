//! Cross-backend differential suite: every mapping backend must produce a
//! voxel-for-voxel identical occupancy map.
//!
//! A seeded scenario generator replays deterministic scan sequences over
//! synthetic scenes through the plain `OccupancyOcTree` baseline, the
//! serial OctoCache, the parallel OctoCache at N ∈ {1, 2, 4, 8} workers and
//! the sharded OctoMap, then compares the resulting trees with
//! `octomap::compare` — including a structural comparison after pruning.
//! This is the gate for the N-worker pipeline: any routing, merge or
//! ordering bug shows up as a log-odds mismatch here.
//!
//! Scenario count is scaled by the `OCTO_TEST_ITERS` env knob so CI can
//! crank iterations (see `.github/workflows/ci.yml`).

use octocache::pipeline::{MappingSystem, OctoMapSystem, RayTracer};
use octocache::{CacheConfig, ParallelOctoCache, SerialOctoCache, ShardedOctoMap, TreeLayout};
use octocache_geom::{Point3, VoxelGrid};
use octocache_octomap::{compare, OccupancyOcTree, OccupancyParams};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Scenario seeds exercised; `OCTO_TEST_ITERS` overrides (CI sets it
/// higher).
fn num_scenarios() -> u64 {
    std::env::var("OCTO_TEST_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
}

/// One deterministic scan: an origin and a point cloud.
struct Scan {
    origin: Point3,
    points: Vec<Point3>,
}

/// Generates a deterministic scan sequence over a synthetic scene: a sensor
/// random-walking through a field of spherical "blobs", sweeping ray fans
/// in random directions. Everything derives from `seed`, so every backend
/// replays the identical sequence.
fn scenario(seed: u64) -> Vec<Scan> {
    let mut rng = StdRng::seed_from_u64(seed);
    // A handful of solid blobs the rays terminate on.
    let blobs: Vec<(Point3, f64)> = (0..6)
        .map(|_| {
            (
                Point3::new(
                    rng.random_range(-18.0..18.0),
                    rng.random_range(-18.0..18.0),
                    rng.random_range(-6.0..6.0),
                ),
                rng.random_range(1.0..3.0),
            )
        })
        .collect();
    let mut origin = Point3::new(
        rng.random_range(-4.0..4.0),
        rng.random_range(-4.0..4.0),
        rng.random_range(-1.0..1.0),
    );
    (0..10)
        .map(|_| {
            origin = Point3::new(
                (origin.x + rng.random_range(-2.0..2.0)).clamp(-20.0, 20.0),
                (origin.y + rng.random_range(-2.0..2.0)).clamp(-20.0, 20.0),
                (origin.z + rng.random_range(-0.5..0.5)).clamp(-4.0, 4.0),
            );
            let points = (0..120)
                .map(|_| {
                    // A random direction; the ray ends on the nearest blob
                    // surface along it, or at max range in free space.
                    let theta = rng.random_range(0.0..std::f64::consts::TAU);
                    let phi = rng.random_range(-0.4..0.4_f64);
                    let dir =
                        Point3::new(theta.cos() * phi.cos(), theta.sin() * phi.cos(), phi.sin());
                    let mut t_hit = 18.0;
                    for (c, r) in &blobs {
                        // Ray-sphere intersection from `origin` along `dir`.
                        let oc = Point3::new(origin.x - c.x, origin.y - c.y, origin.z - c.z);
                        let b = oc.x * dir.x + oc.y * dir.y + oc.z * dir.z;
                        let q = (oc.x * oc.x + oc.y * oc.y + oc.z * oc.z) - r * r;
                        let disc = b * b - q;
                        if disc > 0.0 {
                            let t = -b - disc.sqrt();
                            if t > 0.5 && t < t_hit {
                                t_hit = t;
                            }
                        }
                    }
                    Point3::new(
                        origin.x + dir.x * t_hit,
                        origin.y + dir.y * t_hit,
                        origin.z + dir.z * t_hit,
                    )
                })
                .collect();
            Scan { origin, points }
        })
        .collect()
}

fn grid() -> VoxelGrid {
    VoxelGrid::new(0.5, 8).unwrap()
}

/// A deliberately small cache so τ-eviction fires constantly and the
/// pipelines exercise their eviction/enqueue/merge paths.
fn cache() -> CacheConfig {
    CacheConfig::builder()
        .num_buckets(1 << 7)
        .tau(2)
        .build()
        .unwrap()
}

/// As [`cache`], pinned to an explicit octree storage layout.
fn cache_with(layout: TreeLayout) -> CacheConfig {
    CacheConfig::builder()
        .num_buckets(1 << 7)
        .tau(2)
        .tree_layout(layout)
        .build()
        .unwrap()
}

/// Replays `scans` through `backend` and returns the flushed tree.
fn build_tree(mut backend: Box<dyn MappingSystem>, scans: &[Scan]) -> OccupancyOcTree {
    for scan in scans {
        backend
            .insert_scan(scan.origin, &scan.points, 40.0)
            .expect("scan within grid");
    }
    backend.finish();
    backend.take_tree()
}

/// Every backend under test, with its display label.
fn backends() -> Vec<(String, Box<dyn MappingSystem>)> {
    let params = OccupancyParams::default();
    let mut v: Vec<(String, Box<dyn MappingSystem>)> = vec![
        (
            "serial".to_string(),
            Box::new(SerialOctoCache::new(grid(), params, cache())),
        ),
        (
            "sharded-x8".to_string(),
            Box::new(ShardedOctoMap::new(grid(), params, 8)),
        ),
    ];
    for n in [1usize, 2, 4, 8] {
        v.push((
            format!("parallel-x{n}"),
            Box::new(ParallelOctoCache::with_workers(
                grid(),
                params,
                cache(),
                RayTracer::Standard,
                n,
            )),
        ));
    }
    v
}

/// Every backend pinned to an explicit octree storage layout.
fn backends_with(layout: TreeLayout) -> Vec<(String, Box<dyn MappingSystem>)> {
    let params = OccupancyParams::default();
    let mut v: Vec<(String, Box<dyn MappingSystem>)> = vec![
        (
            "octomap".to_string(),
            Box::new(OctoMapSystem::with_layout(
                grid(),
                params,
                RayTracer::Standard,
                layout,
            )),
        ),
        (
            "serial".to_string(),
            Box::new(SerialOctoCache::new(grid(), params, cache_with(layout))),
        ),
        (
            "sharded-x8".to_string(),
            Box::new(ShardedOctoMap::with_layout(
                grid(),
                params,
                8,
                RayTracer::Standard,
                layout,
            )),
        ),
    ];
    for n in [1usize, 2, 4, 8] {
        v.push((
            format!("parallel-x{n}"),
            Box::new(ParallelOctoCache::with_workers(
                grid(),
                params,
                cache_with(layout),
                RayTracer::Standard,
                n,
            )),
        ));
    }
    v
}

#[test]
fn all_backends_match_octomap_baseline() {
    for seed in 0..num_scenarios() {
        let scans = scenario(seed * 7919 + 1);
        let baseline = build_tree(
            Box::new(OctoMapSystem::new(grid(), OccupancyParams::default())),
            &scans,
        );
        assert!(baseline.num_nodes() > 1, "scenario {seed} built nothing");

        for (label, backend) in backends() {
            let tree = build_tree(backend, &scans);
            let d = compare::diff(&baseline, &tree, 1e-4);
            assert!(
                d.is_identical(),
                "seed {seed}, backend {label}: {} value / {} coverage mismatches of {} \
                 voxels (agreement {:.6}, max |diff| {})",
                d.value_mismatches,
                d.coverage_mismatches,
                d.known_voxels,
                d.agreement(),
                d.max_abs_diff
            );
        }
    }
}

#[test]
fn pruned_trees_stay_equivalent_and_structurally_equal() {
    let scans = scenario(42);
    let mut baseline = build_tree(
        Box::new(OctoMapSystem::new(grid(), OccupancyParams::default())),
        &scans,
    );
    baseline.prune();

    for (label, backend) in backends() {
        let mut tree = build_tree(backend, &scans);
        tree.prune();
        // Pruning must not change the flattened map…
        let d = compare::diff(&baseline, &tree, 1e-4);
        assert!(
            d.is_identical(),
            "pruned {label}: {} value / {} coverage mismatches",
            d.value_mismatches,
            d.coverage_mismatches
        );
        // …and identical maps must prune to identical structure.
        assert_eq!(
            tree.num_nodes(),
            baseline.num_nodes(),
            "pruned node count differs for {label}"
        );
        assert_eq!(
            tree.num_leaves(),
            baseline.num_leaves(),
            "pruned leaf count differs for {label}"
        );
    }
}

#[test]
fn arena_layout_matches_pointer_layout_on_every_backend() {
    // The arena node pool must be observationally indistinguishable from the
    // pointer tree: the same backend built twice — once per layout — over the
    // same scenario must produce bit-for-bit identical maps (tolerance 0.0),
    // and identical structure after pruning. This covers the serial cache,
    // the octant-sharded baseline (whose `take_tree` exercises the arena's
    // child-block splice merge), the plain octomap pipeline, and the
    // N-worker parallel pipeline at N ∈ {1, 2, 4, 8}.
    for seed in 0..num_scenarios() {
        let scans = scenario(seed * 6151 + 13);
        let pointer = backends_with(TreeLayout::Pointer);
        let arena = backends_with(TreeLayout::Arena);
        for ((label, pb), (_, ab)) in pointer.into_iter().zip(arena) {
            let mut ptree = build_tree(pb, &scans);
            let mut atree = build_tree(ab, &scans);
            assert_eq!(ptree.layout(), TreeLayout::Pointer, "{label}");
            assert_eq!(atree.layout(), TreeLayout::Arena, "{label}");
            let d = compare::diff(&ptree, &atree, 0.0);
            assert!(
                d.is_identical(),
                "seed {seed}, backend {label}: pointer vs arena differ — {} value / \
                 {} coverage mismatches of {} voxels (max |diff| {})",
                d.value_mismatches,
                d.coverage_mismatches,
                d.known_voxels,
                d.max_abs_diff
            );
            // Identical maps must also prune identically across layouts.
            ptree.prune();
            atree.prune();
            let dp = compare::diff(&ptree, &atree, 0.0);
            assert!(
                dp.is_identical(),
                "seed {seed}, backend {label}: layouts diverge after prune"
            );
            assert_eq!(
                ptree.num_nodes(),
                atree.num_nodes(),
                "seed {seed}, backend {label}: pruned node count differs across layouts"
            );
            assert_eq!(
                ptree.num_leaves(),
                atree.num_leaves(),
                "seed {seed}, backend {label}: pruned leaf count differs across layouts"
            );
        }
    }
}

#[test]
fn parallel_worker_counts_agree_with_each_other() {
    // Sharper than the baseline comparison: the four parallel layouts must
    // agree bit-for-bit pairwise (tolerance 0.0), since they apply the same
    // per-voxel accumulation in the same per-key order.
    let scans = scenario(7);
    let params = OccupancyParams::default();
    let tree1 = build_tree(
        Box::new(ParallelOctoCache::with_workers(
            grid(),
            params,
            cache(),
            RayTracer::Standard,
            1,
        )),
        &scans,
    );
    for n in [2usize, 4, 8] {
        let tree_n = build_tree(
            Box::new(ParallelOctoCache::with_workers(
                grid(),
                params,
                cache(),
                RayTracer::Standard,
                n,
            )),
            &scans,
        );
        let d = compare::diff(&tree1, &tree_n, 0.0);
        assert!(
            d.is_identical(),
            "N=1 vs N={n}: {} value / {} coverage mismatches of {}",
            d.value_mismatches,
            d.coverage_mismatches,
            d.known_voxels
        );
    }
}
