//! Golden-checksum regression fixtures: every backend × octree layout
//! replays the shared seeded scenarios (blob-walk and the three tiny
//! synthetic datasets) and the resulting [`leaf_checksum`] — an FNV-1a
//! digest over the sorted leaf set, independent of storage layout and
//! insertion order — must equal the value committed in
//! `tests/golden/checksums.txt`.
//!
//! The fixture was generated at the pre-engine-refactor commit, so this
//! suite bit-verifies the unified scan-lifecycle engine (and any future
//! refactor) against history: a single flipped voxel anywhere in the
//! ray-tracing → cache → eviction → octree path changes the digest.
//!
//! Regenerate (after an *intentional* mapping-behaviour change only) with:
//!
//! ```text
//! OCTO_GOLDEN_WRITE=1 cargo test -p octocache --test golden_checksums
//! ```
//!
//! [`leaf_checksum`]: octocache_octomap::OccupancyOcTree::leaf_checksum

mod common;

use std::fmt::Write as _;

use octocache::TreeLayout;
use octocache_datasets::{scenario, Dataset, DatasetConfig, Scan};
use octocache_geom::VoxelGrid;

/// The committed pre-refactor fixture.
const GOLDEN: &str = include_str!("golden/checksums.txt");

/// One replayable scan source: a name, its scans, the sensor range to
/// insert with, and the grid it fits in.
struct Source {
    name: &'static str,
    scans: Vec<Scan>,
    max_range: f64,
    grid: VoxelGrid,
}

/// The scan sources fixed into the fixture: two blob-walk seeds on the
/// default scenario grid, plus the three named synthetic datasets at the
/// tiny scale on a dataset-sized grid.
fn sources() -> Vec<Source> {
    // Dataset scans span ±50 m; 0.4 m leaves over a 16-level grid cover
    // that with margin to spare (coarse enough to keep the full
    // source × backend × layout matrix inside a debug-build test budget).
    let dataset_grid = VoxelGrid::new(0.4, 16).unwrap();
    let mut v: Vec<Source> = vec![
        Source {
            name: "blob-walk-1",
            scans: scenario::blob_walk(1),
            max_range: scenario::MAX_RANGE,
            grid: common::grid(),
        },
        Source {
            name: "blob-walk-7",
            scans: scenario::blob_walk(7),
            max_range: scenario::MAX_RANGE,
            grid: common::grid(),
        },
    ];
    for dataset in Dataset::ALL {
        let seq = dataset.generate(&DatasetConfig::tiny());
        v.push(Source {
            name: dataset.name(),
            scans: seq.scans().to_vec(),
            max_range: seq.max_range(),
            grid: dataset_grid,
        });
    }
    v
}

/// Renders one layout's source × backend checksum lines in fixture
/// format: one `source backend layout 0x<checksum>` line per combination.
fn layout_table(layout: TreeLayout) -> String {
    let mut out = String::new();
    for src in sources() {
        for (label, mut backend) in common::backends_with_grid(src.grid, layout) {
            for scan in &src.scans {
                backend
                    .insert_scan(scan.origin, &scan.points, src.max_range)
                    .expect("scan within grid");
            }
            backend.finish();
            let checksum = backend.take_tree().leaf_checksum();
            writeln!(
                out,
                "{} {} {} {:#018x}",
                src.name,
                label,
                layout.name(),
                checksum
            )
            .unwrap();
        }
    }
    out
}

/// The full fixture table, the two layouts replayed concurrently.
fn checksum_table() -> String {
    let (pointer, arena) = std::thread::scope(|scope| {
        let arena = scope.spawn(|| layout_table(TreeLayout::Arena));
        let pointer = layout_table(TreeLayout::Pointer);
        (pointer, arena.join().expect("arena table"))
    });
    pointer + &arena
}

#[test]
fn golden_checksums_match_pre_refactor() {
    let actual = checksum_table();

    if std::env::var("OCTO_GOLDEN_WRITE").is_ok() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/checksums.txt");
        std::fs::write(path, &actual).expect("write golden fixture");
        eprintln!("wrote {path}");
        return;
    }

    let mut mismatches = Vec::new();
    let mut expected_lines = GOLDEN.lines();
    for actual_line in actual.lines() {
        match expected_lines.next() {
            Some(expected_line) if expected_line == actual_line => {}
            Some(expected_line) => {
                mismatches.push(format!("expected `{expected_line}`, got `{actual_line}`"))
            }
            None => mismatches.push(format!("extra line `{actual_line}` (fixture too short)")),
        }
    }
    for missing in expected_lines {
        mismatches.push(format!("missing line `{missing}` (fixture too long)"));
    }
    assert!(
        mismatches.is_empty(),
        "golden checksum drift — mapping output differs from the \
         pre-refactor fixture:\n{}",
        mismatches.join("\n")
    );
}
