//! Event tracing must be *observationally invisible*: a backend built with
//! sub-scan event recording on must produce a voxel-for-voxel identical map
//! to the same backend with recording off — on every backend, every octree
//! storage layout, and every parallel worker count.
//!
//! Two layers of evidence:
//!
//! 1. A scenario differential (seeded synthetic scans, tolerance 0.0)
//!    across octomap / serial / sharded / parallel N ∈ {1, 2, 4, 8} ×
//!    {Pointer, Arena} layouts, which also checks the recorded stream is
//!    non-empty and structurally sane (spans pair up per lane).
//! 2. A proptest at the `VoxelCache` level: under arbitrary interleavings
//!    of insertions and eviction passes, the eviction stream with events
//!    attached is bit-identical to the stream without.

use octocache::pipeline::{MappingSystem, OctoMapSystem, RayTracer};
use octocache::{CacheConfig, ParallelOctoCache, SerialOctoCache, ShardedOctoMap, TreeLayout};
use octocache_geom::{Point3, VoxelGrid};
use octocache_octomap::{compare, OccupancyOcTree, OccupancyParams};
use octocache_telemetry::{EventKind, EventLog, EventSink};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One deterministic scan: an origin and a point cloud.
struct Scan {
    origin: Point3,
    points: Vec<Point3>,
}

/// A deterministic random-walk scan sequence (every backend replays the
/// same scans). Rays fan out in all directions so multi-worker runs hit
/// several top-level octants.
fn scenario(seed: u64) -> Vec<Scan> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut origin = Point3::new(0.0, 0.0, 0.0);
    (0..8)
        .map(|_| {
            origin = Point3::new(
                (origin.x + rng.random_range(-2.0..2.0)).clamp(-15.0, 15.0),
                (origin.y + rng.random_range(-2.0..2.0)).clamp(-15.0, 15.0),
                (origin.z + rng.random_range(-0.5..0.5)).clamp(-3.0, 3.0),
            );
            let points = (0..100)
                .map(|_| {
                    let theta = rng.random_range(0.0..std::f64::consts::TAU);
                    let phi = rng.random_range(-0.5..0.5_f64);
                    let r = rng.random_range(3.0..14.0);
                    Point3::new(
                        origin.x + r * theta.cos() * phi.cos(),
                        origin.y + r * theta.sin() * phi.cos(),
                        origin.z + r * phi.sin(),
                    )
                })
                .collect();
            Scan { origin, points }
        })
        .collect()
}

fn grid() -> VoxelGrid {
    VoxelGrid::new(0.5, 8).unwrap()
}

/// A small cache so τ-eviction fires constantly — event traffic on every
/// path (hit, miss, evict, enqueue, dequeue, span).
fn cache(layout: TreeLayout, events: bool) -> CacheConfig {
    CacheConfig::builder()
        .num_buckets(1 << 7)
        .tau(2)
        .tree_layout(layout)
        .events(events)
        .build()
        .unwrap()
}

/// Every backend under test, built with event recording on or off.
fn backends(layout: TreeLayout, events: bool) -> Vec<(String, Box<dyn MappingSystem>)> {
    let params = OccupancyParams::default();
    let mut octomap = OctoMapSystem::with_layout(grid(), params, RayTracer::Standard, layout);
    if events {
        octomap.enable_events();
    }
    let mut sharded = ShardedOctoMap::with_layout(grid(), params, 8, RayTracer::Standard, layout);
    if events {
        sharded.enable_events();
    }
    let mut v: Vec<(String, Box<dyn MappingSystem>)> = vec![
        ("octomap".to_string(), Box::new(octomap)),
        (
            "serial".to_string(),
            Box::new(SerialOctoCache::new(grid(), params, cache(layout, events))),
        ),
        ("sharded-x8".to_string(), Box::new(sharded)),
    ];
    for n in [1usize, 2, 4, 8] {
        v.push((
            format!("parallel-x{n}"),
            Box::new(ParallelOctoCache::with_workers(
                grid(),
                params,
                cache(layout, events),
                RayTracer::Standard,
                n,
            )),
        ));
    }
    v
}

/// Replays `scans`, flushes, and returns the tree plus any recorded events.
fn build(
    mut backend: Box<dyn MappingSystem>,
    scans: &[Scan],
) -> (OccupancyOcTree, Option<EventLog>) {
    for scan in scans {
        backend
            .insert_scan(scan.origin, &scan.points, 40.0)
            .expect("scan within grid");
    }
    backend.finish();
    let events = backend.take_events();
    (backend.take_tree(), events)
}

/// Per-lane structural sanity: begins and ends pair up, and cache events
/// only appear on the producer lane.
fn check_stream(label: &str, log: &EventLog) {
    assert!(!log.events.is_empty(), "{label}: recorded stream is empty");
    assert_eq!(log.dropped, 0, "{label}: events dropped at default caps");
    let mut lanes: std::collections::BTreeMap<u32, (u64, u64)> = std::collections::BTreeMap::new();
    for e in &log.events {
        let lane = lanes.entry(e.worker).or_default();
        match e.kind {
            EventKind::BatchBegin => lane.0 += 1,
            EventKind::BatchEnd => lane.1 += 1,
            EventKind::CacheHit | EventKind::CacheMiss | EventKind::CacheEvict => {
                assert_eq!(e.worker, 0, "{label}: cache event off the producer lane");
            }
            _ => {}
        }
    }
    for (lane, (begins, ends)) in &lanes {
        assert_eq!(
            begins, ends,
            "{label}: lane {lane} spans do not pair up ({begins} begins, {ends} ends)"
        );
    }
}

#[test]
fn event_recording_is_invisible_on_every_backend_and_layout() {
    for layout in [TreeLayout::Pointer, TreeLayout::Arena] {
        let scans = scenario(0xC0FFEE ^ layout as u64);
        let plain = backends(layout, false);
        let recorded = backends(layout, true);
        for ((label, pb), (_, rb)) in plain.into_iter().zip(recorded) {
            let (ptree, pevents) = build(pb, &scans);
            let (rtree, revents) = build(rb, &scans);
            assert!(
                pevents.is_none(),
                "{label}/{layout:?}: events recorded with the switch off"
            );
            let log = revents
                .unwrap_or_else(|| panic!("{label}/{layout:?}: no event log with the switch on"));
            check_stream(&format!("{label}/{layout:?}"), &log);
            let d = compare::diff(&ptree, &rtree, 0.0);
            assert!(
                d.is_identical(),
                "{label}/{layout:?}: event recording changed the map — {} value / {} \
                 coverage mismatches of {} voxels (max |diff| {})",
                d.value_mismatches,
                d.coverage_mismatches,
                d.known_voxels,
                d.max_abs_diff
            );
        }
    }
}

#[test]
fn parallel_event_stream_covers_every_worker_lane() {
    let scans = scenario(99);
    let n = 4usize;
    let backend: Box<dyn MappingSystem> = Box::new(ParallelOctoCache::with_workers(
        grid(),
        OccupancyParams::default(),
        cache(TreeLayout::Pointer, true),
        RayTracer::Standard,
        n,
    ));
    let (_, events) = build(backend, &scans);
    let log = events.expect("events enabled");
    assert_eq!(log.dropped, 0);
    for lane in 1..=n as u32 {
        let begins = log
            .events
            .iter()
            .filter(|e| e.worker == lane && e.kind == EventKind::BatchBegin)
            .count();
        let ends = log
            .events
            .iter()
            .filter(|e| e.worker == lane && e.kind == EventKind::BatchEnd)
            .count();
        assert!(begins >= 1, "lane {lane} recorded no batch spans");
        assert_eq!(begins, ends, "lane {lane} spans unpaired");
        // The producer attributes its enqueues to the target lane; every
        // worker that applied a non-empty batch must show queue traffic.
        let dequeues = log
            .events
            .iter()
            .filter(|e| e.worker == lane && e.kind == EventKind::QueueDequeue)
            .count();
        let applied: u64 = log
            .events
            .iter()
            .filter(|e| e.worker == lane && e.kind == EventKind::BatchEnd)
            .map(|e| e.value)
            .sum();
        if applied > 0 {
            assert!(dequeues >= 1, "lane {lane} applied cells without dequeues");
        }
    }
    // Producer-side cache traffic is on lane 0.
    assert!(log
        .events
        .iter()
        .any(|e| e.worker == 0 && e.kind == EventKind::CacheMiss));
    assert!(log
        .events
        .iter()
        .any(|e| e.kind == EventKind::QueueEnqueue && e.worker >= 1));
}

/// Ops driving the cache-level invisibility property.
#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u16, u16, bool),
    Evict,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (0u16..24, 0u16..24, 0u16..24, any::<bool>())
            .prop_map(|(x, y, z, o)| Op::Insert(x, y, z, o)),
        1 => Just(Op::Evict),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Attaching an event buffer never perturbs the cache: under any op
    /// interleaving, both the per-pass eviction streams and the final
    /// drain are bit-identical with and without events.
    #[test]
    fn cache_events_are_invisible(ops in proptest::collection::vec(arb_op(), 1..200)) {
        use octocache::VoxelCache;
        use octocache_geom::VoxelKey;

        let config = CacheConfig::builder()
            .num_buckets(16)
            .tau(3)
            .build()
            .unwrap();
        let params = OccupancyParams::default();
        let mut plain = VoxelCache::new(config, params);
        let mut traced = VoxelCache::new(config, params);
        let sink = EventSink::new();
        traced.attach_events(sink.buffer(0));

        for op in &ops {
            match op {
                Op::Insert(x, y, z, occ) => {
                    let key = VoxelKey::new(*x, *y, *z);
                    let a = plain.insert(key, *occ, |_| None);
                    let b = traced.insert(key, *occ, |_| None);
                    prop_assert_eq!(a, b);
                }
                Op::Evict => {
                    let mut ea = Vec::new();
                    let mut eb = Vec::new();
                    plain.evict_into(&mut ea);
                    traced.evict_into(&mut eb);
                    prop_assert_eq!(ea, eb);
                }
            }
        }
        let fa = plain.drain_all();
        let fb = traced.drain_all();
        prop_assert_eq!(fa, fb);
        prop_assert_eq!(plain.stats().hits, traced.stats().hits);
        prop_assert_eq!(plain.stats().misses, traced.stats().misses);
        prop_assert_eq!(plain.stats().evictions, traced.stats().evictions);
    }
}
