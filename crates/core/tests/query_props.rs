//! Property tests for the batch query path: `MapSnapshot::batch_occupancy`
//! Morton-sorts the queries and reuses root-to-leaf traversal prefixes, so
//! the properties pin down that none of that reordering is observable:
//!
//! 1. **Singles equivalence** — batch answers are bit-identical to
//!    one-at-a-time `occupancy` lookups, in input order, for any tree and
//!    any query list (including keys never inserted).
//! 2. **Permutation invariance** — permuting the query list permutes the
//!    answers and nothing else; the per-query answer is a pure function of
//!    the key.
//! 3. **Degenerate batches** — empty batches, all-duplicate batches, and
//!    batches over an empty tree behave exactly like the equivalent
//!    single-query sequences (and report coherent [`BatchStats`]).

use octocache::MapSnapshot;
use octocache_geom::{VoxelGrid, VoxelKey};
use octocache_octomap::{OccupancyOcTree, OccupancyParams, TreeLayout};
use proptest::prelude::*;

fn grid() -> VoxelGrid {
    VoxelGrid::new(0.5, 8).unwrap()
}

/// Keys confined to a 32³ block so random updates collide often enough to
/// build multi-level structure (and duplicates arise naturally).
fn arb_key() -> impl Strategy<Value = VoxelKey> {
    (100u16..132, 100u16..132, 100u16..132).prop_map(|(x, y, z)| VoxelKey::new(x, y, z))
}

/// A random map: a list of (key, occupied) integrations.
fn arb_updates() -> impl Strategy<Value = Vec<(VoxelKey, bool)>> {
    proptest::collection::vec((arb_key(), any::<bool>()), 0..200)
}

fn arb_queries() -> impl Strategy<Value = Vec<VoxelKey>> {
    proptest::collection::vec(arb_key(), 0..120)
}

fn build_snapshot(updates: &[(VoxelKey, bool)], layout: TreeLayout) -> MapSnapshot {
    let mut tree = OccupancyOcTree::with_layout(grid(), OccupancyParams::default(), layout);
    for (key, occupied) in updates {
        tree.update_node(*key, *occupied);
    }
    MapSnapshot::from_tree(tree)
}

fn bits(o: Option<f32>) -> Option<u32> {
    o.map(f32::to_bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Batch answers are the one-at-a-time answers, in input order,
    /// bit-for-bit — on both storage layouts.
    #[test]
    fn batch_matches_one_at_a_time(updates in arb_updates(), queries in arb_queries()) {
        for layout in [TreeLayout::Pointer, TreeLayout::Arena] {
            let snap = build_snapshot(&updates, layout);
            let (batch, stats) = snap.batch_occupancy(&queries);
            prop_assert_eq!(batch.len(), queries.len());
            prop_assert_eq!(stats.queries, queries.len() as u64);
            prop_assert!(stats.nodes_reused <= stats.nodes_visited + stats.nodes_reused);
            for (i, &k) in queries.iter().enumerate() {
                prop_assert_eq!(
                    bits(batch[i]),
                    bits(snap.occupancy(k)),
                    "query {} for {:?} ({:?})", i, k, layout
                );
            }
        }
    }

    /// Permuting the query list permutes the answers: answers follow their
    /// key, independent of batch position and of what else is in the batch.
    #[test]
    fn batch_is_permutation_invariant(
        updates in arb_updates(),
        queries in arb_queries(),
        rot in 0usize..120,
    ) {
        let snap = build_snapshot(&updates, TreeLayout::Pointer);
        let (base, _) = snap.batch_occupancy(&queries);

        // A rotation plus a reversal covers arbitrary reorderings without
        // needing a permutation strategy.
        let mut rotated = queries.clone();
        if !rotated.is_empty() {
            let r = rot % rotated.len();
            rotated.rotate_left(r);
        }
        let mut reversed = queries.clone();
        reversed.reverse();

        for variant in [rotated, reversed] {
            let (answers, stats) = snap.batch_occupancy(&variant);
            prop_assert_eq!(stats.queries, variant.len() as u64);
            for (i, &k) in variant.iter().enumerate() {
                let j = queries.iter().position(|&q| q == k).expect("same multiset");
                prop_assert_eq!(
                    answers[i].map(f32::to_bits),
                    base[j].map(f32::to_bits),
                    "answer for {:?} changed with batch order", k
                );
            }
        }
    }

    /// An all-duplicates batch answers every slot identically to the single
    /// query, and the prefix reuse path cannot conflate distinct keys.
    #[test]
    fn duplicate_queries_all_get_the_single_answer(
        updates in arb_updates(),
        key in arb_key(),
        copies in 1usize..50,
    ) {
        let snap = build_snapshot(&updates, TreeLayout::Pointer);
        let single = bits(snap.occupancy(key));
        let batch_input = vec![key; copies];
        let (answers, stats) = snap.batch_occupancy(&batch_input);
        prop_assert_eq!(answers.len(), copies);
        prop_assert_eq!(stats.queries, copies as u64);
        for a in answers {
            prop_assert_eq!(a.map(f32::to_bits), single);
        }
    }

    /// Empty batches do nothing; batches against an empty tree answer
    /// `None` everywhere — exactly like singles.
    #[test]
    fn degenerate_batches(queries in arb_queries()) {
        let snap = build_snapshot(&[], TreeLayout::Pointer);

        let (empty, empty_stats) = snap.batch_occupancy(&[]);
        prop_assert!(empty.is_empty());
        prop_assert_eq!(empty_stats.queries, 0);
        prop_assert_eq!(empty_stats.nodes_visited, 0);
        prop_assert_eq!(empty_stats.nodes_reused, 0);

        let (answers, stats) = snap.batch_occupancy(&queries);
        prop_assert_eq!(stats.queries, queries.len() as u64);
        for (i, &k) in queries.iter().enumerate() {
            prop_assert!(answers[i].is_none(), "unknown key {:?} answered Some", k);
            prop_assert!(snap.occupancy(k).is_none());
        }
    }
}
